"""Continuous cross-session batching acceptance tests (ISSUE 6).

Acceptance contract: with ``batching="continuous"`` on a single lane
holding n >= 4 co-resident sessions, request throughput strictly
improves AND mean TTFT strictly drops versus ``batching="off"`` at
identical final answers, and batch occupancy > 1 surfaces in both the
fleet metrics and the per-device rollup. ``batching="off"`` stays
byte-identical to the default run-to-completion path, and composing
batching with PR 5's prefix KV sharing on same-problem traffic beats
either feature alone on mean latency.
"""

import pytest

from repro.core.config import ConfigError, baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.core.pool import DevicePool, PooledDevice
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset


def answer_signature(report):
    return {
        rid: sorted((b.lineage, b.answer, b.correct, b.score) for b in res.beams)
        for rid, res in report.results.items()
    }


def record_signature(report):
    return [
        (
            r.request_id, r.arrival_s, r.start_s, r.finish_s,
            r.accepted, r.reject_reason,
            r.latency.to_json_dict() if r.latency else None,
        )
        for r in report.records
    ]


def burst_fleet(batching=None):
    """Five sessions arriving ~1 request/s on one rtx4090 lane.

    Run-to-completion serializes the queue, so every later arrival
    waits out its predecessors' full solves; continuous batching
    co-locates all five and amortizes the weight read per iteration.
    ``batching=None`` omits the kwarg entirely to pin the default.
    """
    dataset = build_dataset("amc23", seed=0, size=5)
    kwargs = {} if batching is None else {"batching": batching}
    fleet = TTSFleet(
        baseline_config(memory_fraction=0.4, seed=0), dataset,
        scheduler="fifo", **kwargs,
    )
    arrivals = generate_arrivals(5, 1.0, seed=0)
    fleet.submit_stream(
        list(dataset), build_algorithm("beam_search", 4), arrivals
    )
    return fleet.drain()


@pytest.fixture(scope="module")
def burst_off():
    return burst_fleet("off")


@pytest.fixture(scope="module")
def burst_continuous():
    return burst_fleet("continuous")


class TestAcceptance:
    """Batching changes when work happens, never what gets computed."""

    def test_throughput_strictly_improves(self, burst_off, burst_continuous):
        assert (
            burst_continuous.metrics.throughput_rps
            > burst_off.metrics.throughput_rps
        )

    def test_mean_ttft_strictly_drops(self, burst_off, burst_continuous):
        assert burst_off.metrics.ttft_mean_s > 0.0
        assert (
            burst_continuous.metrics.ttft_mean_s
            < burst_off.metrics.ttft_mean_s
        )

    def test_answers_identical(self, burst_off, burst_continuous):
        assert answer_signature(burst_continuous) == answer_signature(burst_off)

    def test_occupancy_exceeds_one_in_metrics(self, burst_continuous):
        m = burst_continuous.metrics
        assert m.batch_occupancy_mean > 1.0
        assert m.batch_occupancy_peak > 1

    def test_occupancy_exceeds_one_in_device_rollup(self, burst_continuous):
        lane = burst_continuous.devices[0]
        assert lane.batch_iterations > 0
        assert lane.batch_occupancy_mean > 1.0
        assert lane.batch_occupancy_peak > 1
        assert "occ mean" in burst_continuous.device_table()

    def test_off_lane_reports_unit_occupancy(self, burst_off):
        assert burst_off.metrics.batch_occupancy_mean == 1.0
        assert burst_off.metrics.batch_occupancy_peak == 1
        assert burst_off.devices[0].batch_iterations == 0

    def test_mode_surfaces_on_report(self, burst_off, burst_continuous):
        assert burst_off.batching == "off"
        assert burst_continuous.batching == "continuous"

    def test_slo_metrics_populated(self, burst_off, burst_continuous):
        for report in (burst_off, burst_continuous):
            accepted = [r for r in report.records if r.accepted]
            assert accepted
            for rec in accepted:
                assert rec.ttft_s is not None and rec.ttft_s >= 0.0
                assert rec.tpot_s is not None and rec.tpot_s > 0.0
            assert report.metrics.tpot_mean_s > 0.0
            assert "ttft mean s" in report.table()


class TestOffIsTheDefault:
    """Omitting ``batching`` must reproduce ``batching="off"`` exactly —
    same records, same beams, down to every float."""

    def test_default_matches_explicit_off(self, burst_off):
        default = burst_fleet()
        assert default.batching == "off"
        assert record_signature(default) == record_signature(burst_off)
        assert {
            rid: res.to_json_dict() for rid, res in sorted(default.results.items())
        } == {
            rid: res.to_json_dict() for rid, res in sorted(burst_off.results.items())
        }


class TestComposition:
    """PR 5 + PR 6: prefix sharing and continuous batching compose.

    Same-problem traffic at memory_fraction 0.34 thrashes the ledger
    when every co-resident session is billed its full footprint; dedup
    removes the swap, batching removes the serialized weight reads, and
    together they beat either alone on mean latency — at identical
    answers in all four cells.
    """

    @staticmethod
    def run(kv_sharing, batching):
        dataset = build_dataset("amc23", seed=0, size=2)
        config = fasttts_config(memory_fraction=0.34, seed=0)
        fleet = TTSFleet(
            config, dataset, scheduler="round_robin",
            kv_sharing=kv_sharing, batching=batching,
        )
        problem = list(dataset)[0]
        for i in range(3):
            fleet.submit(problem, build_algorithm("beam_search", 16), float(i))
        return fleet.drain()

    @pytest.fixture(scope="class")
    def matrix(self):
        return {
            (batching, sharing): self.run(sharing, batching)
            for batching in ("off", "continuous")
            for sharing in ("off", "prefix")
        }

    def test_both_beats_either_alone(self, matrix):
        neither = matrix[("off", "off")].metrics.latency_mean_s
        sharing_only = matrix[("off", "prefix")].metrics.latency_mean_s
        batching_only = matrix[("continuous", "off")].metrics.latency_mean_s
        both = matrix[("continuous", "prefix")].metrics.latency_mean_s
        assert both < batching_only < neither
        assert both < sharing_only < neither

    def test_sharing_still_cuts_swap_under_batching(self, matrix):
        assert (
            matrix[("continuous", "prefix")].metrics.kv_swap_s
            < matrix[("continuous", "off")].metrics.kv_swap_s
        )
        assert matrix[("continuous", "prefix")].metrics.kv_dedup_ratio > 1.0

    def test_answers_identical_across_cells(self, matrix):
        signatures = [answer_signature(r) for r in matrix.values()]
        assert all(sig == signatures[0] for sig in signatures)


class TestConfig:
    @staticmethod
    def any_dataset():
        return build_dataset("amc23", seed=0, size=1)

    def test_bad_batching_rejected(self):
        with pytest.raises(ConfigError, match="batching"):
            TTSFleet(
                baseline_config(memory_fraction=0.4), self.any_dataset(),
                batching="dynamic",
            )

    def test_prepared_pool_owns_its_batching_mode(self):
        pool = DevicePool.build(
            baseline_config(memory_fraction=0.4), self.any_dataset()
        )
        with pytest.raises(ConfigError, match="batching"):
            TTSFleet(pool=pool, batching="continuous")

    def test_pool_build_with_batching(self):
        dataset = self.any_dataset()
        pool = DevicePool.build(
            baseline_config(memory_fraction=0.4), dataset,
            batching="continuous",
        )
        assert all(lane.batching == "continuous" for lane in pool)
        fleet = TTSFleet(pool=pool)
        fleet.submit(list(dataset)[0], build_algorithm("best_of_n", 2), 0.0)
        assert fleet.drain().batching == "continuous"

    def test_pooled_device_validates_mode(self):
        lane = DevicePool.build(
            baseline_config(memory_fraction=0.4), self.any_dataset()
        )[0]
        with pytest.raises(ConfigError, match="batching"):
            PooledDevice(index=lane.index, server=lane.server, batching="chunked")


def two_lane_burst(faults="off", recovery="failover"):
    """The burst workload spread over two lanes, batching continuously.

    ``least_loaded`` placement splits the five requests across the pool
    (dev0 batches two, dev1 batches three), so a lane crash hits one
    running batch while the other keeps serving — the ISSUE 8 scenario
    for settling a batch's surviving members.
    """
    dataset = build_dataset("amc23", seed=0, size=5)
    fleet = TTSFleet(
        baseline_config(memory_fraction=0.4, seed=0), dataset,
        scheduler="round_robin", devices=["rtx4090"] * 2,
        placement="least_loaded", batching="continuous",
        faults=faults, recovery=recovery,
    )
    arrivals = generate_arrivals(5, 1.0, seed=0)
    fleet.submit_stream(
        list(dataset), build_algorithm("beam_search", 4), arrivals
    )
    return fleet.drain()


class TestCrashDuringBatch:
    """A lane crash mid-batch (ISSUE 8): members that already settled
    keep their records bit-for-bit (their amortized share of the jointly
    costed weight read is never re-billed), live members fail over into
    the other lane's running batch, and the whole outcome is
    deterministic."""

    @pytest.fixture(scope="class")
    def batch_baseline(self):
        return two_lane_burst()

    @pytest.fixture(scope="class")
    def crash_spec(self, batch_baseline):
        """Crash the busier lane after its first member settles but while
        the rest of its batch is still decoding."""
        by_lane = {}
        for record in batch_baseline.records:
            by_lane.setdefault(record.device_id, []).append(record)
        lane_id, members = max(by_lane.items(), key=lambda kv: len(kv[1]))
        finishes = sorted(r.finish_s for r in members)
        assert len(finishes) >= 2, "need a multi-member batch to crash"
        crash_at = (finishes[0] + finishes[1]) / 2.0
        return f"crash:at={crash_at},lane={int(lane_id.split(':')[0][3:])}"

    @pytest.fixture(scope="class")
    def crashed(self, crash_spec):
        return two_lane_burst(faults=crash_spec, recovery="failover")

    def test_crash_hit_a_live_batch(self, crashed):
        assert crashed.metrics.lane_failures == 1
        assert any(r.failed_over for r in crashed.records)

    def test_settled_member_keeps_record_bit_for_bit(
        self, batch_baseline, crashed, crash_spec
    ):
        crash_at = float(crash_spec.split("at=")[1].split(",")[0])
        settled = [r for r in batch_baseline.records if r.finish_s < crash_at]
        assert settled, "a batch member should have settled pre-crash"
        after = {r.request_id: r for r in crashed.records}
        for before in settled:
            assert after[before.request_id] == before

    def test_live_members_fail_over_and_answer_identically(
        self, batch_baseline, crashed
    ):
        failed_over = [r for r in crashed.records if r.failed_over]
        assert failed_over
        baseline_by_id = {r.request_id: r for r in batch_baseline.records}
        for record in failed_over:
            assert record.accepted and not record.lost
            assert record.retries == 0  # failover, not retry
            assert record.redone_work_s > 0.0
            assert record.finish_s > baseline_by_id[record.request_id].finish_s
            # Billed time = the re-run plus the crash-discarded work; a
            # double-billed weight read would push it past both.
            assert record.device_seconds > record.redone_work_s
        assert answer_signature(crashed) == answer_signature(batch_baseline)

    def test_all_requests_recovered(self, crashed):
        assert crashed.metrics.availability == 1.0
        assert crashed.metrics.requests_lost == 0
        assert crashed.metrics.completed == len(crashed.records)

    def test_crash_outcome_is_deterministic(self, crashed, crash_spec):
        again = two_lane_burst(faults=crash_spec, recovery="failover")
        assert again.records == crashed.records
        assert answer_signature(again) == answer_signature(crashed)

    def test_shed_loses_only_the_live_members(
        self, batch_baseline, crashed, crash_spec
    ):
        shed = two_lane_burst(faults=crash_spec, recovery="shed")
        lost = {r.request_id for r in shed.records if r.lost}
        assert lost == {r.request_id for r in crashed.records if r.failed_over}
        assert shed.metrics.availability < crashed.metrics.availability
        crash_at = float(crash_spec.split("at=")[1].split(",")[0])
        settled = [r for r in batch_baseline.records if r.finish_s < crash_at]
        after = {r.request_id: r for r in shed.records}
        for before in settled:
            assert after[before.request_id] == before
