"""Tests for the resumable SolveSession state machine.

The headline guarantee: a session stepped to completion is byte-identical
— same ``ProblemRunResult`` JSON, same ``SolveTrace`` JSONL — to the
pre-refactor monolithic solve loop, whose outputs are pinned in
``tests/goldens/solve_goldens.json`` (regenerate with
``tests/goldens/capture.py``).
"""

import json
from pathlib import Path

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.core.session import SessionState, SolveSession
from repro.errors import SchedulingError
from repro.search.registry import build_algorithm, list_algorithms
from repro.workloads.datasets import build_dataset

GOLDENS = json.loads(
    (Path(__file__).parent.parent / "goldens" / "solve_goldens.json").read_text()
)
N = 8
SEED = 3  # must match tests/goldens/capture.py


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("amc23", seed=SEED, size=2)


@pytest.fixture(scope="module")
def problem(dataset):
    return list(dataset)[0]


def make_server(dataset, system: str) -> TTSServer:
    factory = fasttts_config if system == "fasttts" else baseline_config
    return TTSServer(factory(memory_fraction=0.4, seed=SEED), dataset)


class TestGoldenEquivalence:
    """Session-stepped execution == the legacy run-to-completion monolith."""

    @pytest.mark.parametrize("system", ["baseline", "fasttts"])
    @pytest.mark.parametrize("algorithm_name", list_algorithms())
    def test_byte_identical_to_legacy_solve(
        self, dataset, problem, system, algorithm_name
    ):
        golden = GOLDENS[f"{system}/{algorithm_name}"]
        server = make_server(dataset, system)
        outcome = server.solve_detailed(
            problem, build_algorithm(algorithm_name, N), trace=True
        )
        assert outcome.result.to_json_dict() == golden["result"]
        assert outcome.trace.to_jsonl() == golden["trace"]

    @pytest.mark.parametrize(
        "label, arrivals",
        [
            ("fasttts/beam_search/preempt-mid", (5.0,)),
            ("fasttts/beam_search/preempt-immediate", (-1.0, 4.0)),
        ],
    )
    def test_arrival_preemption_byte_identical(
        self, dataset, problem, label, arrivals
    ):
        golden = GOLDENS[label]
        server = make_server(dataset, "fasttts")
        outcome = server.solve_detailed(
            problem, build_algorithm("beam_search", N),
            arrivals=arrivals, trace=True,
        )
        assert outcome.result.to_json_dict() == golden["result"]
        assert outcome.trace.to_jsonl() == golden["trace"]

    def test_manual_stepping_matches_run(self, dataset, problem):
        """Driving step() by hand produces the same outcome as run()."""
        server = make_server(dataset, "fasttts")
        algo = build_algorithm("beam_search", N)
        stepped = server.session(problem, algo, trace=True)
        while stepped.state.live:
            stepped.step()
        golden = GOLDENS["fasttts/beam_search"]
        assert stepped.outcome.result.to_json_dict() == golden["result"]
        assert stepped.outcome.trace.to_jsonl() == golden["trace"]


class TestStateMachine:
    def test_lifecycle_transitions(self, dataset, problem):
        server = make_server(dataset, "baseline")
        session = server.session(problem, build_algorithm("beam_search", N))
        assert session.state is SessionState.ADMITTED
        assert session.step() is SessionState.GENERATING
        assert session.clock.now == 0.0  # setup is free
        assert session.step() is SessionState.VERIFYING
        assert session.clock.now > 0.0  # a generation round costs time
        seen = {SessionState.ADMITTED, SessionState.GENERATING,
                SessionState.VERIFYING}
        while session.state.live:
            seen.add(session.step())
        assert session.state is SessionState.DONE
        assert SessionState.FINALIZING in seen

    def test_alternates_generation_and_verification(self, dataset, problem):
        server = make_server(dataset, "baseline")
        session = server.session(problem, build_algorithm("beam_search", N))
        session.step()
        states = []
        while session.state.live:
            states.append(session.state)
            session.step()
        rounds = states[:-1] if states[-1] is SessionState.FINALIZING else states
        for i, state in enumerate(rounds):
            expected = (SessionState.GENERATING if i % 2 == 0
                        else SessionState.VERIFYING)
            assert state is expected

    def test_outcome_unavailable_before_done(self, dataset, problem):
        server = make_server(dataset, "baseline")
        session = server.session(problem, build_algorithm("beam_search", N))
        with pytest.raises(SchedulingError):
            _ = session.outcome

    def test_step_after_done_raises(self, dataset, problem):
        server = make_server(dataset, "baseline")
        session = server.session(problem, build_algorithm("beam_search", N))
        session.run()
        with pytest.raises(SchedulingError):
            session.step()

    def test_cancel(self, dataset, problem):
        server = make_server(dataset, "baseline")
        session = server.session(problem, build_algorithm("beam_search", N))
        session.step()
        session.step()
        session.cancel()
        assert session.state is SessionState.CANCELLED
        with pytest.raises(SchedulingError):
            session.step()
        with pytest.raises(SchedulingError):
            _ = session.outcome

    def test_cancel_after_done_raises(self, dataset, problem):
        server = make_server(dataset, "baseline")
        session = server.session(problem, build_algorithm("beam_search", N))
        session.run()
        with pytest.raises(SchedulingError):
            session.cancel()

    def test_run_on_cancelled_session_raises(self, dataset, problem):
        server = make_server(dataset, "baseline")
        session = server.session(problem, build_algorithm("beam_search", N))
        session.cancel()
        with pytest.raises(SchedulingError):
            session.run()


class TestInterleaving:
    def test_interleaved_sessions_match_isolated_runs(self, dataset):
        """Round-robin interleaving on one server changes nothing per solve."""
        problems = list(dataset)
        algo = build_algorithm("beam_search", N)

        isolated = {}
        for p in problems:
            server = make_server(dataset, "fasttts")
            isolated[p.problem_id] = server.solve_detailed(p, algo, trace=True)

        server = make_server(dataset, "fasttts")
        sessions = [server.session(p, algo, trace=True) for p in problems]
        while any(s.state.live for s in sessions):
            for session in sessions:
                if session.state.live:
                    session.step()
        for p, session in zip(problems, sessions):
            assert (session.outcome.result.to_json_dict()
                    == isolated[p.problem_id].result.to_json_dict())
            assert (session.outcome.trace.to_jsonl()
                    == isolated[p.problem_id].trace.to_jsonl())

    def test_sessions_have_private_clocks(self, dataset):
        problems = list(dataset)
        server = make_server(dataset, "baseline")
        algo = build_algorithm("beam_search", N)
        a = server.session(problems[0], algo)
        b = server.session(problems[1], algo)
        a.step(); a.step()  # setup + one generation round
        assert a.clock.now > 0.0
        assert b.clock.now == 0.0

    def test_forked_rng_session_diverges(self, dataset, problem):
        """An rng-forked replica explores a different sampled search."""
        server = make_server(dataset, "fasttts")
        algo = build_algorithm("beam_search", N)
        canonical = server.session(problem, algo).run()
        variant = server.session(
            problem, algo, rng=server.rng.fork("replica", 1)
        ).run()
        assert (canonical.result.to_json_dict()
                != variant.result.to_json_dict())


class TestServerWrappers:
    def test_solve_matches_session_run(self, dataset, problem):
        server = make_server(dataset, "fasttts")
        algo = build_algorithm("beam_search", N)
        via_wrapper = server.solve(problem, algo)
        via_session = server.session(problem, algo).run().result
        assert via_wrapper.to_json_dict() == via_session.to_json_dict()

    def test_plan_cache_exposed_after_solve(self, dataset, problem):
        server = make_server(dataset, "fasttts")
        assert server._plan_cache == {}
        server.solve(problem, build_algorithm("beam_search", N))
        assert server._plan_cache
