"""Tests for request-arrival preemption and stream serving."""

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.search.beam_search import BeamSearch
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("amc23", seed=4, size=3)


@pytest.fixture(scope="module")
def problem(dataset):
    return list(dataset)[0]


ALGO = BeamSearch(n=16)


class TestArrivalPreemption:
    def test_early_arrival_suppresses_speculation(self, dataset, problem):
        free = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, ALGO
        )
        preempted = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, ALGO, arrivals=(0.0,)
        )
        spec_free = free.tokens.speculative_used + free.tokens.speculative_wasted
        spec_pre = (
            preempted.tokens.speculative_used + preempted.tokens.speculative_wasted
        )
        assert spec_free > 0
        assert spec_pre < spec_free * 0.2

    def test_preemption_preserves_results(self, dataset, problem):
        """Paper: preemption stops speculation, never the algorithm."""
        free = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, ALGO
        )
        preempted = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, ALGO, arrivals=(1.0,)
        )
        assert sorted((b.lineage, b.answer) for b in free.beams) == sorted(
            (b.lineage, b.answer) for b in preempted.beams
        )

    def test_late_arrival_changes_nothing(self, dataset, problem):
        free = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, ALGO
        )
        late = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, ALGO, arrivals=(free.latency.total * 10,)
        )
        assert late.latency.total == free.latency.total

    def test_baseline_unaffected_by_arrivals(self, dataset, problem):
        base = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        a = base.solve(problem, ALGO)
        b = base.solve(problem, ALGO, arrivals=(0.0,))
        assert a.latency.total == b.latency.total


class TestServeStream:
    def test_stream_returns_all(self, dataset):
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        results = server.serve_stream(list(dataset), ALGO, inter_arrival_s=5.0)
        assert len(results) == 3
        assert len({r.problem_id for r in results}) == 3

    def test_dense_stream_suppresses_more_speculation_than_sparse(self, dataset):
        dense = TTSServer(fasttts_config(memory_fraction=0.4), dataset).serve_stream(
            list(dataset), ALGO, inter_arrival_s=0.5
        )
        sparse = TTSServer(fasttts_config(memory_fraction=0.4), dataset).serve_stream(
            list(dataset), ALGO, inter_arrival_s=1e6
        )
        spec = lambda results: sum(  # noqa: E731
            r.tokens.speculative_used + r.tokens.speculative_wasted for r in results
        )
        assert spec(dense) < spec(sparse)

    def test_stream_results_match_isolated_runs_algorithmically(self, dataset):
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        stream = server.serve_stream(list(dataset), ALGO, inter_arrival_s=1.0)
        isolated = TTSServer(fasttts_config(memory_fraction=0.4), dataset).run(
            list(dataset), ALGO
        )
        for s, i in zip(stream, isolated):
            assert [b.answer for b in s.beams] == [b.answer for b in i.beams]

    def test_negative_interval_rejected(self, dataset):
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        with pytest.raises(ValueError):
            server.serve_stream(list(dataset), ALGO, inter_arrival_s=-1.0)


class TestQuantizedServing:
    def test_int8_faster_same_results(self, dataset, problem):
        fp16 = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, ALGO
        )
        int8 = TTSServer(
            fasttts_config(memory_fraction=0.4, quantization="int8"), dataset
        ).solve(problem, ALGO)
        assert int8.goodput > fp16.goodput
        assert sorted((b.lineage, b.answer) for b in int8.beams) == sorted(
            (b.lineage, b.answer) for b in fp16.beams
        )

    def test_quantization_enables_tight_fits(self, dataset, problem):
        """int8 lets the 7B pair fit where fp16 cannot."""
        from repro.errors import CapacityError

        cfg_fp16 = fasttts_config(
            device_name="rtx4070ti", model_config="7B+1.5B", memory_fraction=0.95
        )
        with pytest.raises(CapacityError):
            TTSServer(cfg_fp16, dataset)
        cfg_int8 = cfg_fp16.with_overrides(quantization="int8")
        server = TTSServer(cfg_int8, dataset)
        assert server.kv_budget_bytes > 0
