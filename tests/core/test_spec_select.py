"""Tests for SelectSPEC speculative-candidate selection."""

import pytest

from repro.core.spec_select import SelectSpec, speculative_potential


class TestSpeculativePotential:
    def test_top_bin_gets_full_branching(self):
        assert speculative_potential(0.99, 4) == 4
        assert speculative_potential(1.0, 4) == 4

    def test_bottom_bin_gets_one(self):
        assert speculative_potential(0.01, 4) == 1
        assert speculative_potential(0.0, 4) == 1

    def test_monotone_in_score(self):
        potentials = [speculative_potential(s / 10, 4) for s in range(11)]
        assert potentials == sorted(potentials)

    def test_none_score_middle_bin(self):
        assert 1 <= speculative_potential(None, 4) <= 4

    def test_binning_formula(self):
        """M_i = B - j + 1 with fixed-width bins (Sec. 4.1.1)."""
        assert speculative_potential(0.875, 4) == 4  # bin C1: [0.75, 1]
        assert speculative_potential(0.625, 4) == 3  # bin C2
        assert speculative_potential(0.375, 4) == 2  # bin C3
        assert speculative_potential(0.125, 4) == 1  # bin C4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            speculative_potential(1.5, 4)
        with pytest.raises(ValueError):
            speculative_potential(0.5, 0)


class TestSelectSpec:
    def test_priority_order(self):
        selector = SelectSpec(branching_factor=4)
        selector.offer((0,), 0.2)   # potential 1
        selector.offer((1,), 0.9)   # potential 4
        parent, child = selector.next_branch()
        assert parent == (1,)
        assert child == 0

    def test_same_parent_drawn_up_to_potential(self):
        selector = SelectSpec(branching_factor=4)
        selector.offer((1,), 0.9)
        claims = [selector.next_branch() for _ in range(4)]
        assert all(c is not None and c[0] == (1,) for c in claims)
        assert [c[1] for c in claims] == [0, 1, 2, 3]

    def test_exhausted_pool_returns_none(self):
        selector = SelectSpec(branching_factor=2)
        selector.offer((0,), 0.1)  # potential 1
        assert selector.next_branch() is not None
        assert selector.next_branch() is None

    def test_fifo_within_equal_potential(self):
        selector = SelectSpec(branching_factor=1)
        selector.offer((5,), 0.5)
        selector.offer((6,), 0.5)
        assert selector.next_branch()[0] == (5,)
        assert selector.next_branch()[0] == (6,)

    def test_len_counts_live_candidates(self):
        selector = SelectSpec(branching_factor=4)
        selector.offer((0,), 0.9)
        selector.offer((1,), 0.9)
        assert len(selector) == 2
        for _ in range(4):
            selector.next_branch()
        assert len(selector) == 1

    def test_interleaved_offers(self):
        """Slots freed over time mix with new candidates correctly."""
        selector = SelectSpec(branching_factor=4)
        selector.offer((0,), 0.55)  # potential 3
        assert selector.next_branch()[0] == (0,)
        selector.offer((1,), 0.95)  # potential 4: jumps the queue
        assert selector.next_branch()[0] == (1,)

    def test_bad_branching_factor(self):
        with pytest.raises(ValueError):
            SelectSpec(branching_factor=0)
