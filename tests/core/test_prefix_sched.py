"""Tests for Dynamic Prefix-Aware Scheduling."""

import warnings

import pytest

from repro.core.prefix_sched import (
    eviction_cost,
    greedy_order,
    greedy_successor,
    lineage_order,
    random_order,
    schedule_tries,
    worst_case_order,
)
from repro.kvcache.radix import RadixTree
from repro.utils.rng import KeyedRng


def make_tree(n_subtrees=4, children=4, depth=3):
    """Balanced reasoning tree; returns (tree, leaves, lineage map)."""
    tree = RadixTree()
    tree.add_node(0, None, 10)
    leaves, lineages = [], {}
    next_id = [1]

    def grow(parent, lineage, level):
        if level == depth:
            leaves.append(parent)
            lineages[parent] = lineage
            return
        width = n_subtrees if level == 0 else children
        for i in range(width):
            node = next_id[0]
            next_id[0] += 1
            tree.add_node(node, parent, 5)
            grow(node, lineage + (i,), level + 1)

    grow(0, (), 0)
    return tree, leaves, lineages


class TestOrders:
    def test_greedy_groups_siblings(self):
        tree, leaves, _ = make_tree()
        order = greedy_order(leaves, tree, lambda x: x)
        # consecutive items should mostly share deep prefixes
        sharing = [
            tree.shared_prefix_nodes(order[i], order[i + 1])
            for i in range(len(order) - 1)
        ]
        assert sum(sharing) / len(sharing) > 1.5

    def test_greedy_beats_random_in_adjacent_sharing(self):
        tree, leaves, _ = make_tree()
        rng = KeyedRng(0)

        def adjacent_sharing(order):
            return sum(
                tree.shared_prefix_tokens(order[i], order[i + 1])
                for i in range(len(order) - 1)
            )

        greedy = adjacent_sharing(greedy_order(leaves, tree, lambda x: x))
        rand = adjacent_sharing(random_order(leaves, rng))
        worst = adjacent_sharing(worst_case_order(leaves, tree, lambda x: x))
        assert greedy > rand > worst

    def test_lineage_order_groups_siblings(self):
        tree, leaves, lineages = make_tree()
        order = lineage_order(leaves, lambda leaf: lineages[leaf])
        for i in range(0, len(order) - 1, 2):
            a, b = lineages[order[i]], lineages[order[i + 1]]
            assert a[:-1] == b[:-1] or a[: len(b) - 1] == b[: len(b) - 1] or True
        # siblings adjacent: lineage prefixes of consecutive pairs match often
        sharing = [
            tree.shared_prefix_nodes(order[i], order[i + 1])
            for i in range(len(order) - 1)
        ]
        assert sum(s >= 2 for s in sharing) / len(sharing) > 0.6

    def test_random_order_deterministic_per_seed(self):
        items = list(range(20))
        rng = KeyedRng(3)
        assert random_order(items, rng, salt=1) == random_order(items, rng, salt=1)
        assert random_order(items, rng, salt=1) != random_order(items, rng, salt=2)

    def test_empty_inputs(self):
        tree = RadixTree()
        assert greedy_order([], tree, lambda x: x) == []
        assert worst_case_order([], tree, lambda x: x) == []


class TestTries:
    def test_partition_respects_capacity(self):
        tree, leaves, _ = make_tree()
        tries = schedule_tries(leaves, tree, lambda x: x, capacity_nodes=8)
        for t in tries:
            assert len(t) <= 8

    def test_single_trie_when_everything_fits(self):
        tree, leaves, _ = make_tree(n_subtrees=2, children=2, depth=2)
        tries = schedule_tries(leaves, tree, lambda x: x, capacity_nodes=1000)
        assert len(tries) == 1

    def test_capacity_validation(self):
        tree, leaves, _ = make_tree()
        with pytest.raises(ValueError):
            schedule_tries(leaves, tree, lambda x: x, capacity_nodes=0)


class TestEvictionCost:
    def test_cost_at_least_compulsory(self):
        """Total cost is bounded below by the unique node count."""
        tree, leaves, _ = make_tree()
        unique_nodes = len({n for leaf in leaves for n in tree.path(leaf)})
        cost = eviction_cost(
            greedy_order(leaves, tree, lambda x: x), tree, lambda x: x, 16
        )
        assert cost >= unique_nodes - 16  # all but the last trie evicts

    def test_greedy_no_worse_than_alternatives(self):
        tree, leaves, _ = make_tree()
        rng = KeyedRng(1)
        for capacity in (8, 16, 32):
            greedy = eviction_cost(
                greedy_order(leaves, tree, lambda x: x), tree, lambda x: x, capacity
            )
            rand = eviction_cost(random_order(leaves, rng), tree, lambda x: x, capacity)
            worst = eviction_cost(
                worst_case_order(leaves, tree, lambda x: x), tree, lambda x: x, capacity
            )
            assert greedy <= rand
            assert greedy <= worst

    def test_lineage_matches_greedy_closely(self):
        """The practical implementation approaches the greedy schedule."""
        tree, leaves, lineages = make_tree()
        greedy = eviction_cost(
            greedy_order(leaves, tree, lambda x: x), tree, lambda x: x, 16
        )
        lineage = eviction_cost(
            lineage_order(leaves, lambda leaf: lineages[leaf]), tree, lambda x: x, 16
        )
        assert lineage <= greedy * 1.15

    def test_ample_capacity_equalizes_orders(self):
        tree, leaves, _ = make_tree()
        rng = KeyedRng(2)
        big = 10_000
        greedy = eviction_cost(
            greedy_order(leaves, tree, lambda x: x), tree, lambda x: x, big
        )
        rand = eviction_cost(random_order(leaves, rng), tree, lambda x: x, big)
        assert greedy == rand  # only compulsory cost remains

    def test_empty_schedule_costs_nothing(self):
        tree = RadixTree()
        assert eviction_cost([], tree, lambda x: x, 10) == 0


class TestGreedyTieBreaks:
    """The documented deterministic tie-break: ascending leaf id, in the
    anchor sort and the successor argmax alike."""

    def tie_heavy_tree(self):
        """Star of equal-depth, equal-length chains: every successor
        choice after the anchor is a pure tie on shared prefix."""
        tree = RadixTree()
        tree.add_node(0, None, 10)
        leaves = []
        for i in range(6):
            mid, leaf = 100 + i, 200 + i
            tree.add_node(mid, 0, 5)
            tree.add_node(leaf, mid, 5)
            leaves.append(leaf)
        return tree, leaves

    def test_anchor_prefers_lowest_leaf_id(self):
        tree, leaves = self.tie_heavy_tree()
        order = greedy_order(list(reversed(leaves)), tree, lambda x: x)
        assert order[0] == min(leaves)

    def test_successor_prefers_lowest_leaf_id_on_ties(self):
        tree, leaves = self.tie_heavy_tree()
        # all pairs share exactly the root: every step is a full tie, so
        # the schedule must be ascending leaf ids end to end
        order = greedy_order(list(reversed(leaves)), tree, lambda x: x)
        assert order == sorted(leaves)

    def test_greedy_successor_direct(self):
        tree, leaves = self.tie_heavy_tree()
        pick = greedy_successor(list(reversed(leaves)), tree, lambda x: x, leaves[0])
        assert pick == leaves[0]  # itself shares most with itself
        pick = greedy_successor(
            [leaves[3], leaves[1], leaves[2]], tree, lambda x: x, leaves[0]
        )
        assert pick == leaves[1]  # tie -> lowest id

    def test_greedy_successor_rejects_empty(self):
        tree, _ = self.tie_heavy_tree()
        with pytest.raises(ValueError):
            greedy_successor([], tree, lambda x: x, 0)

    def test_order_invariant_to_input_permutation(self):
        """Determinism: any input order yields the identical schedule."""
        tree, leaves = self.tie_heavy_tree()
        rng = KeyedRng(7)
        baseline = greedy_order(leaves, tree, lambda x: x)
        for salt in range(5):
            shuffled = random_order(leaves, rng, salt=salt)
            assert greedy_order(shuffled, tree, lambda x: x) == baseline


class TestOversizedTrie:
    def chain_tree(self, depth):
        tree = RadixTree()
        tree.add_node(0, None, 4)
        for i in range(1, depth):
            tree.add_node(i, i - 1, 4)
        return tree, depth - 1

    def test_oversized_single_path_warns(self):
        tree, leaf = self.chain_tree(6)
        with pytest.warns(RuntimeWarning, match="oversized trie"):
            tries = schedule_tries([leaf], tree, lambda x: x, capacity_nodes=4)
        # still scheduled — as its own (oversized) trie
        assert tries == [set(range(6))]

    def test_oversized_path_does_not_absorb_neighbours(self):
        tree = RadixTree()
        tree.add_node(0, None, 4)
        for i in range(1, 6):
            tree.add_node(i, i - 1, 4)
        tree.add_node(10, 0, 4)  # a short sibling path
        with pytest.warns(RuntimeWarning):
            tries = schedule_tries([5, 10], tree, lambda x: x, capacity_nodes=4)
        assert tries == [set(range(6)), {0, 10}]

    def test_fitting_paths_do_not_warn(self):
        tree, leaf = self.chain_tree(4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tries = schedule_tries([leaf], tree, lambda x: x, capacity_nodes=4)
        assert tries == [set(range(4))]
