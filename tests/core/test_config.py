"""Tests for server configuration."""

import pytest

from repro.core.config import OffloadMode, ServerConfig, baseline_config, fasttts_config
from repro.errors import ConfigError


class TestServerConfig:
    def test_baseline_all_off(self):
        cfg = baseline_config()
        assert not cfg.speculation
        assert not cfg.prefix_caching
        assert not cfg.prefix_aware
        assert not cfg.asymmetric_alloc
        assert not cfg.lookahead
        assert cfg.offload is OffloadMode.OFF

    def test_fasttts_all_on(self):
        cfg = fasttts_config()
        assert cfg.speculation and cfg.prefix_caching and cfg.prefix_aware
        assert cfg.asymmetric_alloc and cfg.lookahead
        assert cfg.offload is OffloadMode.AUTO

    def test_lookahead_requires_speculation(self):
        with pytest.raises(ConfigError):
            ServerConfig(lookahead=True)

    def test_prefix_aware_requires_caching(self):
        with pytest.raises(ConfigError):
            ServerConfig(prefix_aware=True)

    def test_speculation_requires_caching(self):
        with pytest.raises(ConfigError):
            ServerConfig(speculation=True)

    def test_memory_fraction_bounds(self):
        with pytest.raises(ConfigError):
            ServerConfig(memory_fraction=0.0)
        with pytest.raises(ConfigError):
            ServerConfig(memory_fraction=1.5)

    def test_truncation_ratio_bounds(self):
        with pytest.raises(ConfigError):
            ServerConfig(spec_truncation_ratio=1.1)

    def test_with_overrides(self):
        cfg = fasttts_config().with_overrides(seed=9)
        assert cfg.seed == 9
        assert cfg.speculation

    def test_with_overrides_unknown_key(self):
        with pytest.raises(ConfigError) as excinfo:
            fasttts_config().with_overrides(speculatoin=False)
        assert "speculatoin" in str(excinfo.value)

    def test_with_overrides_suggests_nearest_key(self):
        with pytest.raises(ConfigError) as excinfo:
            fasttts_config().with_overrides(speculatoin=False)
        assert "did you mean 'speculation'?" in str(excinfo.value)

    def test_with_overrides_no_suggestion_for_nonsense(self):
        with pytest.raises(ConfigError) as excinfo:
            fasttts_config().with_overrides(zzqx=1)
        assert "did you mean" not in str(excinfo.value)

    def test_with_overrides_reports_every_unknown_key(self):
        with pytest.raises(ConfigError) as excinfo:
            fasttts_config().with_overrides(bogus=1, also_bogus=2)
        assert "also_bogus" in str(excinfo.value)
        assert "bogus" in str(excinfo.value)

    def test_overrides_in_factory(self):
        cfg = fasttts_config(speculation=False, lookahead=False)
        assert not cfg.speculation
        assert cfg.prefix_aware
