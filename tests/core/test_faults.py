"""Fault injection, lane failover, and retry-with-backoff (ISSUE 8).

Acceptance contract: a mid-trace lane crash on a 4-lane pool recovers
strictly more requests under ``failover`` and ``retry`` than under
``shed`` (availability and goodput-under-deadline ordered accordingly);
a ``first_finish``-raced request survives one replica's crash whenever a
sibling replica lives; ``faults="off"`` stays byte-identical to the
fault-free fleet (pinned by ``tests/goldens/fleet_fifo_goldens.json``);
and the same fault spec plus seed reproduces identical records twice.
"""

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.core.pool import DevicePool, LaneHealth
from repro.errors import ConfigError, FaultError, RetryExhaustedError
from repro.faults import (
    FaultInjector,
    KvPressure,
    LaneCrash,
    LinkDegrade,
    RetryPolicy,
    TransientStall,
    build_fault,
    fault_descriptions,
    list_faults,
    parse_fault_spec,
)
from repro.search.registry import build_algorithm
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset


class TestFaultSpecParsing:
    def test_off_means_no_processes(self):
        assert parse_fault_spec("off") == ()
        assert parse_fault_spec("") == ()
        assert parse_fault_spec(None) == ()

    def test_single_clause_fields(self):
        (crash,) = parse_fault_spec("crash:at=100,lane=2,mttr=50")
        assert isinstance(crash, LaneCrash)
        assert crash.at == 100.0 and crash.lane == 2 and crash.mttr == 50.0

    def test_multiple_clauses(self):
        procs = parse_fault_spec(
            "crash:rate=0.001;stall:at=10,duration=5;"
            "link_degrade:at=20,factor=0.5;kv_pressure:at=30,fraction=0.7"
        )
        assert [type(p) for p in procs] == [
            LaneCrash, TransientStall, LinkDegrade, KvPressure,
        ]

    def test_unknown_kind_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'crash'"):
            parse_fault_spec("crah:at=1")

    def test_malformed_clause_rejected(self):
        for spec in ("crash", "crash:at", "crash:at=x", "crash:=1", ":at=1"):
            with pytest.raises(ConfigError):
                parse_fault_spec(spec)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("crash:at=1,bogus=2")

    def test_schedule_validation(self):
        with pytest.raises(ConfigError):  # neither at= nor rate=
            build_fault("crash")
        with pytest.raises(ConfigError):  # both
            build_fault("crash", at=1.0, rate=0.1)
        with pytest.raises(ConfigError):
            build_fault("stall", at=1.0, duration=0.0)
        with pytest.raises(ConfigError):
            build_fault("link_degrade", at=1.0, factor=1.5)
        with pytest.raises(ConfigError):
            build_fault("kv_pressure", at=1.0, fraction=0.0)
        with pytest.raises(ConfigError):
            build_fault("crash", at=1.0, mttr=-5.0)

    def test_registry_descriptions(self):
        assert list_faults() == sorted(list_faults())
        assert set(fault_descriptions()) == set(list_faults())
        assert all(fault_descriptions().values())


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(budget=3, backoff_s=2.0)
        assert [policy.backoff(a) for a in (1, 2, 3)] == [2.0, 4.0, 8.0]

    def test_budget_exhaustion_raises(self):
        policy = RetryPolicy(budget=2, backoff_s=1.0)
        policy.backoff(2)
        with pytest.raises(RetryExhaustedError):
            policy.backoff(3)

    def test_zero_budget_never_retries(self):
        with pytest.raises(RetryExhaustedError):
            RetryPolicy(budget=0).backoff(1)

    def test_invalid_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestInjectorDeterminism:
    def spec(self):
        return parse_fault_spec(
            "crash:rate=0.001,mttr=100;stall:rate=0.002,duration=10"
        )

    def test_same_seed_same_timeline(self):
        a = FaultInjector(self.spec(), KeyedRng(3).fork("faults"), 4)
        b = FaultInjector(self.spec(), KeyedRng(3).fork("faults"), 4)
        assert a.timeline(5000.0) == b.timeline(5000.0)

    def test_timeline_time_ordered_and_seed_sensitive(self):
        a = FaultInjector(self.spec(), KeyedRng(3).fork("faults"), 4)
        events = a.timeline(5000.0)
        assert events
        assert list(events) == sorted(events, key=lambda e: e.time_s)
        c = FaultInjector(self.spec(), KeyedRng(4).fork("faults"), 4)
        assert c.timeline(5000.0) != events

    def test_clauses_compose_without_perturbation(self):
        """Adding a clause must not move the existing clause's events."""
        solo = FaultInjector(
            parse_fault_spec("crash:rate=0.001,mttr=100"),
            KeyedRng(3).fork("faults"), 4,
        )
        both = FaultInjector(self.spec(), KeyedRng(3).fork("faults"), 4)
        crashes_solo = [e for e in solo.timeline(5000.0)]
        crashes_both = [e for e in both.timeline(5000.0) if e.kind == "crash"]
        assert crashes_both == crashes_solo

    def test_pop_due_consumes_in_order(self):
        injector = FaultInjector(
            parse_fault_spec("stall:rate=0.01,duration=1"),
            KeyedRng(0).fork("faults"), 2,
        )
        first = injector.peek()
        assert first is not None
        events = injector.pop_due(first)
        assert events and all(e.time_s <= first for e in events)
        assert injector.peek() is None or injector.peek() > first

    def test_pinned_lane_out_of_range(self):
        with pytest.raises(ConfigError):
            FaultInjector(
                parse_fault_spec("crash:at=1,lane=4"),
                KeyedRng(0).fork("faults"), 4,
            )


class TestLaneLifecycle:
    def lane(self, kv_sharing="off"):
        dataset = build_dataset("amc23", seed=0, size=1)
        pool = DevicePool.build(
            fasttts_config(memory_fraction=0.9, seed=0), dataset,
            ["rtx4090"], kv_sharing=kv_sharing,
        )
        return pool[0], list(dataset)[0]

    def grown_session(self, lane, problem, segment_granular):
        session = lane.server.session(problem, build_algorithm("beam_search", 4))
        for _ in range(5):
            session.step()
        if segment_granular:
            lane.ledger.charge_growth_segments(
                session.session_id, session.kv_segments()
            )
        else:
            lane.ledger.charge_growth(
                session.session_id, session.resident_kv_bytes
            )
        return session

    def test_fail_lane_releases_resident_kv(self):
        lane, problem = self.lane()
        session = self.grown_session(lane, problem, segment_granular=False)
        assert lane.ledger.resident_bytes > 0
        released = lane.fail_lane(10.0)
        assert lane.health is LaneHealth.DOWN and not lane.serving
        assert released == [session.session_id]
        assert lane.ledger.resident_bytes == 0
        assert lane.clock.now >= 10.0
        assert lane.failures == 1

    def test_fail_lane_releases_shared_segment_claims(self):
        lane, problem = self.lane(kv_sharing="prefix")
        session = self.grown_session(lane, problem, segment_granular=True)
        assert lane.ledger.resident_bytes > 0
        released = lane.fail_lane(10.0)
        assert session.session_id in released
        assert lane.ledger.resident_bytes == 0
        assert lane.ledger.owners == []

    def test_double_fail_rejected(self):
        lane, _ = self.lane()
        lane.fail_lane(1.0)
        with pytest.raises(FaultError):
            lane.fail_lane(2.0)

    def test_recover_resets_lane(self):
        lane, _ = self.lane()
        lane.degrade_link(0.5)
        lane.fail_lane(10.0)
        lane.recover_lane(60.0)
        assert lane.health is LaneHealth.UP
        assert lane.link_scale == 1.0
        assert lane.downtime_s == pytest.approx(50.0)
        assert lane.recoveries == 1
        with pytest.raises(FaultError):  # cannot recover an UP lane
            lane.recover_lane(70.0)

    def test_stall_freezes_clock(self):
        lane, _ = self.lane()
        before = lane.clock.now
        lane.stall(30.0)
        assert lane.clock.now == before + 30.0
        assert lane.stall_s == 30.0
        with pytest.raises(FaultError):
            lane.stall(0.0)

    def test_degrade_link_scales_bandwidth(self):
        lane, _ = self.lane()
        # Transfer time = fixed latency + bytes/bandwidth; difference the
        # two payload sizes to isolate the bandwidth term.
        def per_byte():
            return lane.link.transfer_time(2 << 20) - lane.link.transfer_time(1 << 20)
        nominal = per_byte()
        lane.degrade_link(0.25)
        assert lane.health is LaneHealth.DEGRADED
        assert per_byte() == pytest.approx(4 * nominal)
        lane.restore_link()
        assert lane.health is LaneHealth.UP
        assert per_byte() == pytest.approx(nominal)

    def test_kv_pressure_shrinks_and_evicts(self):
        lane, problem = self.lane()
        self.grown_session(lane, problem, segment_granular=False)
        resident = lane.ledger.resident_bytes
        assert resident > 0
        capacity = lane.ledger.capacity_bytes
        fraction = (resident / 2) / capacity
        evicted = lane.apply_kv_pressure(fraction)
        assert lane.health is LaneHealth.DEGRADED
        assert lane.ledger.capacity_bytes < capacity
        assert sum(b for _, b in evicted) > 0
        assert lane.ledger.resident_bytes <= lane.ledger.capacity_bytes
        lane.relieve_kv_pressure()
        assert lane.health is LaneHealth.UP
        assert lane.ledger.capacity_bytes == capacity


def crash_fleet(faults, recovery, *, devices=4, scheduler="fifo",
                requests=8, rate=0.05, deadline_s=100000.0, seed=0,
                retry_budget=3, max_lanes=None):
    dataset = build_dataset("amc23", seed=seed, size=requests)
    config = baseline_config(memory_fraction=0.4, seed=seed)
    fleet = TTSFleet(
        config, dataset, scheduler=scheduler,
        devices=["rtx4090"] * devices,
        faults=faults, recovery=recovery, retry_budget=retry_budget,
    )
    arrivals = generate_arrivals(requests, rate, seed=seed)
    problems = list(dataset)
    for problem, arrival in zip(problems, arrivals):
        fleet.submit(
            problem, build_algorithm("beam_search", 4),
            arrival_s=arrival, deadline_s=deadline_s,
        )
    return fleet.drain()


@pytest.fixture(scope="module")
def crash_baseline():
    return crash_fleet("off", "failover")


@pytest.fixture(scope="module")
def crash_at(crash_baseline):
    """Mid-flight instant of a correctly-answered request on lane 0.

    Goodput-under-deadline only counts *correct* completions, so the
    ordering acceptance test needs the crash to kill work that would
    have scored — losing a wrong answer leaves goodput untouched.
    """
    for record in crash_baseline.records:
        if crash_baseline.results[record.request_id].top1_correct:
            return (record.start_s + record.finish_s) / 2.0
    pytest.fail("baseline produced no correct answer to crash")


class TestRecoveryPolicyOrdering:
    """Acceptance: failover and retry strictly beat shed after a crash."""

    @pytest.fixture(scope="class")
    def reports(self, crash_at):
        spec = f"crash:at={crash_at},lane=0"
        return {
            policy: crash_fleet(spec, policy)
            for policy in ("failover", "retry", "shed")
        }

    def test_crash_hits_in_flight_work(self, reports):
        shed = reports["shed"].metrics
        assert shed.lane_failures == 1
        assert shed.requests_lost > 0

    def test_strictly_more_requests_recovered(self, reports):
        done = {p: r.metrics.completed for p, r in reports.items()}
        assert done["failover"] > done["shed"]
        assert done["retry"] > done["shed"]

    def test_availability_ordered(self, reports, crash_baseline):
        avail = {p: r.metrics.availability for p, r in reports.items()}
        assert avail["failover"] > avail["shed"]
        assert avail["retry"] > avail["shed"]
        assert avail["shed"] < crash_baseline.metrics.availability

    def test_goodput_under_deadline_ordered(self, reports):
        goodput = {
            p: r.slo_summary().goodput_ud_rps for p, r in reports.items()
        }
        assert goodput["failover"] > goodput["shed"]
        assert goodput["retry"] > goodput["shed"]

    def test_slo_summary_exposes_losses(self, reports):
        summary = reports["shed"].slo_summary()
        assert summary.requests_lost == reports["shed"].metrics.requests_lost
        assert summary.availability < 1.0
        assert "availability" in summary.table()

    def test_fault_accounting_on_records(self, reports):
        failover = reports["failover"]
        assert any(r.failed_over for r in failover.records)
        assert sum(r.redone_work_s for r in failover.records) > 0.0
        retry = reports["retry"]
        assert any(r.retries > 0 for r in retry.records)
        for record in reports["shed"].records:
            if record.lost:
                assert not record.accepted
                assert "crash" in record.reject_reason

    def test_report_labels(self, reports):
        assert reports["failover"].recovery == "failover"
        assert reports["failover"].faults.startswith("crash:")

    def test_same_spec_same_seed_identical_records(self, reports, crash_at):
        spec = f"crash:at={crash_at},lane=0"
        again = crash_fleet(spec, "retry")
        assert again.records == reports["retry"].records


class TestRetryExhaustion:
    def test_zero_budget_loses_request_terminally(self, crash_at):
        report = crash_fleet(
            f"crash:at={crash_at},lane=0", "retry", retry_budget=0
        )
        lost = [r for r in report.records if r.lost]
        assert lost
        assert all("retry budget" in r.reject_reason for r in lost)
        assert report.metrics.requests_lost == len(lost)


class TestMTTRAndSingleLane:
    def test_single_lane_crash_waits_for_repair(self, crash_at):
        """With one lane, failover can only wait out the MTTR window."""
        report = crash_fleet(
            f"crash:at={crash_at},lane=0,mttr=300", "failover", devices=1
        )
        m = report.metrics
        assert m.lane_failures == 1
        assert m.requests_lost == 0
        assert m.completed == m.requests
        assert m.mttr_s == pytest.approx(300.0, rel=0.2)
        lane = report.devices[0]
        assert lane.failures == 1 and lane.recoveries == 1
        assert lane.downtime_s > 0.0
        assert "down s" in report.device_table()

    def test_permanent_single_lane_crash_loses_the_rest(self, crash_at):
        report = crash_fleet(
            f"crash:at={crash_at},lane=0", "failover", devices=1
        )
        m = report.metrics
        assert m.requests_lost > 0
        assert m.availability < 1.0
        assert m.completed + m.requests_lost == m.requests


class TestFirstFinishCrashSurvival:
    """A crash killing one replica must not fail the raced request."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return crash_fleet(
            "off", "failover", devices=2, scheduler="first_finish",
            requests=1,
        )

    def test_replicas_spread_across_lanes(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        fleet = TTSFleet(
            baseline_config(memory_fraction=0.4, seed=0), dataset,
            scheduler="first_finish", devices=["rtx4090"] * 2,
        )
        fleet.submit(
            list(dataset)[0], build_algorithm("beam_search", 4),
            arrival_s=0.0,
        )
        report = fleet.drain()
        assert report.records[0].replicas == 2
        # Both lanes advanced their clocks: the race really spanned them.
        assert all(lane.clock.now > 0.0 for lane in fleet.pool)

    @pytest.mark.parametrize("lane", [0, 1])
    def test_survives_either_replica_crash(self, baseline, lane):
        crash_time = baseline.records[0].finish_s / 2.0
        report = crash_fleet(
            f"crash:at={crash_time},lane={lane}", "failover",
            devices=2, scheduler="first_finish", requests=1,
        )
        record = report.records[0]
        assert record.accepted and not record.lost
        assert not record.failed_over  # the sibling survived: no restart
        assert report.results["req-0000"].beams

    def test_surviving_replica_serves_identical_answer(self, baseline):
        """Crash the losing lane: the winner's answer is untouched."""
        winner_lane = int(baseline.records[0].device_id.split(":")[0][3:])
        loser_lane = 1 - winner_lane
        crash_time = baseline.records[0].finish_s / 2.0
        report = crash_fleet(
            f"crash:at={crash_time},lane={loser_lane}", "failover",
            devices=2, scheduler="first_finish", requests=1,
        )
        record = report.records[0]
        assert record.accepted
        assert record.device_id == baseline.records[0].device_id
        base_beams = baseline.results["req-0000"].beams
        got_beams = report.results["req-0000"].beams
        assert [b.answer for b in got_beams] == [b.answer for b in base_beams]


class TestNonCrashFaults:
    def test_stall_inflates_makespan(self, crash_baseline, crash_at):
        stalled = crash_fleet(
            f"stall:at={crash_at},lane=0,duration=500", "failover"
        )
        assert (
            stalled.metrics.makespan_s
            > crash_baseline.metrics.makespan_s
        )
        assert stalled.metrics.completed == crash_baseline.metrics.completed
        assert any(d.stall_s == 500.0 for d in _lanes_of(stalled))

    def test_kv_pressure_charges_eviction_traffic(self):
        """A pressure spike on a loaded lane forces swap traffic."""
        dataset = build_dataset("amc23", seed=0, size=2)
        config = fasttts_config(memory_fraction=0.3, seed=0)
        base = TTSFleet(config, dataset, scheduler="round_robin")
        base.submit_stream(
            list(dataset), build_algorithm("beam_search", 16), (0.0, 1.0)
        )
        base_report = base.drain()
        squeezed = TTSFleet(
            config, dataset, scheduler="round_robin",
            faults="kv_pressure:at=5,lane=0,fraction=0.4,duration=60",
        )
        squeezed.submit_stream(
            list(dataset), build_algorithm("beam_search", 16), (0.0, 1.0)
        )
        squeezed_report = squeezed.drain()
        assert (
            squeezed_report.metrics.kv_swap_s > base_report.metrics.kv_swap_s
        )

    def test_link_degrade_slows_swap_traffic(self):
        dataset = build_dataset("amc23", seed=0, size=2)
        config = fasttts_config(memory_fraction=0.3, seed=0)
        def thrash(faults):
            fleet = TTSFleet(
                config, dataset, scheduler="round_robin", faults=faults
            )
            fleet.submit_stream(
                list(dataset), build_algorithm("beam_search", 16), (0.0, 1.0)
            )
            return fleet.drain()
        nominal = thrash("off")
        degraded = thrash("link_degrade:at=1,lane=0,factor=0.25")
        assert nominal.metrics.kv_swap_s > 0.0
        assert degraded.metrics.kv_swap_s > nominal.metrics.kv_swap_s


def _lanes_of(report):
    return report.devices


class TestRateBasedClauses:
    def test_sparse_rate_clause_does_not_outlive_the_run(self):
        """A Poisson clause is an infinite event stream; the drain must
        stop consuming it once no runnable lane or pending arrival
        remains (regression: the loop pumped trailing events forever)."""
        report = crash_fleet("stall:rate=0.0001,duration=20", "retry",
                             requests=4)
        assert report.metrics.completed == 4
        assert report.metrics.lane_failures == 0

    def test_dense_rate_crashes_recovered_deterministically(self):
        spec = "crash:rate=0.02,mttr=40"
        first = crash_fleet(spec, "failover", requests=4)
        second = crash_fleet(spec, "failover", requests=4)
        assert first.records == second.records
        assert first.metrics.lane_failures > 0


class TestFaultsOffIdentity:
    def test_off_is_default_byte_identical(self):
        explicit = crash_fleet("off", "failover")
        default = crash_fleet("off", "failover")
        assert explicit.records == default.records
        assert explicit.faults == "off"

    def test_bad_recovery_rejected(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        with pytest.raises(ConfigError):
            TTSFleet(
                baseline_config(memory_fraction=0.4), dataset,
                recovery="pray",
            )

    def test_cli_rejects_malformed_spec(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--faults", "crash:at="]) == 2
        assert "--faults" in capsys.readouterr().err

    def test_cli_rejects_unknown_fault_in_trace(self, capsys):
        from repro.cli import main

        assert main(["trace", "run", "--faults", "wobble:at=1"]) == 2
        assert "unknown fault type 'wobble'" in capsys.readouterr().err
