"""Tests for the TTSServer serving loop."""

import pytest

from repro.core.config import OffloadMode, baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.errors import CapacityError
from repro.search.beam_search import BeamSearch
from repro.search.best_of_n import BestOfN
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("amc23", seed=1, size=2)


@pytest.fixture(scope="module")
def problem(dataset):
    return list(dataset)[0]


class TestConstruction:
    def test_weights_must_fit(self, dataset):
        with pytest.raises(CapacityError):
            TTSServer(
                baseline_config(model_config="7B+1.5B", memory_fraction=0.6,
                                device_name="rtx3070ti"),
                dataset,
            )

    def test_kv_budget_positive(self, dataset):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        assert server.kv_budget_bytes > 0

    def test_plan_allocation_static_vs_asymmetric(self, dataset):
        static = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        asym = TTSServer(
            fasttts_config(memory_fraction=0.4, offload=OffloadMode.OFF), dataset
        )
        assert static.plan_allocation(32).kv_pre_bytes != asym.plan_allocation(
            32
        ).kv_pre_bytes


class TestSolve:
    def test_produces_beams(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        result = server.solve(problem, BeamSearch(n=8))
        assert len(result.beams) >= 1
        assert result.goodput > 0
        assert result.latency.total > 0

    def test_latency_components_accounted(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        result = server.solve(problem, BeamSearch(n=8))
        assert result.latency.accounted == pytest.approx(result.latency.total)
        assert result.latency.generation > result.latency.verification

    def test_beam_tokens_match_paths(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        outcome = server.solve_detailed(problem, BeamSearch(n=8))
        for path, beam in zip(outcome.collected, outcome.result.beams):
            assert beam.tokens == path.total_tokens
            assert beam.lineage == path.lineage

    def test_completion_times_within_total(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        result = server.solve(problem, BeamSearch(n=8))
        for beam in result.beams:
            assert 0 < beam.completion_time <= result.latency.total

    def test_run_many_problems(self, dataset):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        results = server.run(list(dataset), BeamSearch(n=8))
        assert len(results) == 2
        assert results[0].problem_id != results[1].problem_id

    def test_solve_is_reproducible(self, dataset, problem):
        a = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, BeamSearch(n=8)
        )
        b = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, BeamSearch(n=8)
        )
        assert a.latency.total == b.latency.total
        assert [x.answer for x in a.beams] == [x.answer for x in b.beams]

    def test_best_of_n_final_scoring(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        result = server.solve(problem, BestOfN(n=8))
        assert len(result.beams) == 8  # chains never pruned
        assert all(b.score > 0 for b in result.beams)

    def test_every_collected_beam_scored(self, dataset, problem):
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        outcome = server.solve_detailed(problem, BeamSearch(n=8))
        for path in outcome.collected:
            assert len(path.scores) == path.steps_done


class TestSpeculationAccounting:
    def test_spec_tokens_partition(self, dataset, problem):
        """used + wasted == all speculative tokens generated."""
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        result = server.solve(problem, BeamSearch(n=16))
        total_spec = result.tokens.speculative_used + result.tokens.speculative_wasted
        assert total_spec > 0  # speculation actually ran
        assert result.tokens.speculative_used >= 0

    def test_truncation_ratio_zero_wastes_more(self, dataset, problem):
        low = TTSServer(
            fasttts_config(memory_fraction=0.4, spec_truncation_ratio=0.0), dataset
        ).solve(problem, BeamSearch(n=16))
        high = TTSServer(
            fasttts_config(memory_fraction=0.4, spec_truncation_ratio=0.85), dataset
        ).solve(problem, BeamSearch(n=16))
        assert high.tokens.speculation_efficiency >= low.tokens.speculation_efficiency


class TestOffloadPath:
    def test_forced_offload_charges_swap(self, dataset, problem):
        server = TTSServer(
            fasttts_config(
                memory_fraction=0.4, offload=OffloadMode.FORCE,
            ),
            dataset,
        )
        result = server.solve(problem, BeamSearch(n=8))
        assert result.latency.swap > 0

    def test_auto_offload_on_tiny_gpu(self, dataset, problem):
        server = TTSServer(
            fasttts_config(
                device_name="rtx3070ti", memory_fraction=0.95,
            ),
            dataset,
        )
        plan = server.plan_allocation(64)
        result = server.solve(problem, BeamSearch(n=8))
        assert result.goodput > 0
        if plan.offload:
            assert result.latency.swap > 0


class TestPerformanceOrdering:
    def test_fasttts_beats_baseline(self, dataset, problem):
        base = TTSServer(baseline_config(memory_fraction=0.4), dataset).solve(
            problem, BeamSearch(n=32)
        )
        fast = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, BeamSearch(n=32)
        )
        assert fast.goodput > base.goodput
        assert fast.latency.total < base.latency.total
        assert fast.latency.verification < base.latency.verification

    def test_generation_utilization_improves(self, dataset, problem):
        from repro.engine.telemetry import Phase
        from repro.metrics.utilization import mean_phase_utilization

        base = TTSServer(baseline_config(memory_fraction=0.4), dataset).solve(
            problem, BeamSearch(n=32)
        )
        fast = TTSServer(fasttts_config(memory_fraction=0.4), dataset).solve(
            problem, BeamSearch(n=32)
        )
        assert mean_phase_utilization(
            fast.util_spans, Phase.GENERATION
        ) > mean_phase_utilization(base.util_spans, Phase.GENERATION)
