"""Tests for the pluggable request schedulers driving TTSFleet.

``fifo`` must reproduce the pre-refactor run-to-completion fleet byte for
byte (``tests/goldens/fleet_fifo_goldens.json``); the non-FIFO policies
must honour their contracts: SJF/round-robin improve queueing behaviour
under contention, and First-Finish racing never returns a worse answer
than FIFO on the same seed.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.core.scheduler import (
    FirstFinishScheduler,
    build_scheduler,
    list_schedulers,
    predict_cost,
    scheduler_descriptions,
)
from repro.core.server import TTSServer
from repro.errors import ConfigError
from repro.metrics.fleet import compare_policies
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset

GOLDENS = json.loads(
    (Path(__file__).parent.parent / "goldens" / "fleet_fifo_goldens.json").read_text()
)


def drain(policy, rate, size=5, n=4, seed=0, fast=False, max_in_flight=None):
    factory = fasttts_config if fast else baseline_config
    dataset = build_dataset("amc23", seed=seed, size=size)
    fleet = TTSFleet(
        factory(memory_fraction=0.4, seed=seed), dataset,
        max_in_flight=max_in_flight, scheduler=policy,
    )
    arrivals = generate_arrivals(size, rate, seed=seed)
    fleet.submit_stream(list(dataset), build_algorithm("beam_search", n), arrivals)
    return fleet.drain()


def answer_signature(result):
    """Search outcome only — scheduling may shift timing, never answers."""
    return sorted(
        (b.lineage, b.tokens, b.answer, b.correct, b.score) for b in result.beams
    )


def record_dict(record):
    return {
        "request_id": record.request_id,
        "arrival_s": record.arrival_s,
        "start_s": record.start_s,
        "finish_s": record.finish_s,
        "accepted": record.accepted,
        "reject_reason": record.reject_reason,
        "latency": record.latency.to_json_dict() if record.latency else None,
    }


class TestRegistry:
    def test_all_policies_registered(self):
        assert list_schedulers() == [
            "fifo", "first_finish", "prefix_affinity", "round_robin", "sjf"
        ]

    def test_descriptions_cover_every_policy(self):
        assert set(scheduler_descriptions()) == set(list_schedulers())
        assert all(scheduler_descriptions().values())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            build_scheduler("priority")

    def test_ffs_replica_validation(self):
        with pytest.raises(ConfigError):
            FirstFinishScheduler(replicas=0)

    def test_ffs_threshold_validation(self):
        with pytest.raises(ConfigError):
            FirstFinishScheduler(verify_threshold=0.0)
        with pytest.raises(ConfigError):
            FirstFinishScheduler(verify_threshold=1.5)


class TestFifoGoldens:
    """scheduler="fifo" reproduces the pre-refactor TTSFleet exactly."""

    @pytest.mark.parametrize(
        "label, rate, max_in_flight",
        [
            ("open-slow", 0.005, None),
            ("open-busy", 0.05, None),
            ("capped-saturated", 1.0, 2),
        ],
    )
    def test_records_and_results_match_golden(self, label, rate, max_in_flight):
        report = drain("fifo", rate, max_in_flight=max_in_flight)
        golden = GOLDENS[label]
        assert [record_dict(r) for r in report.records] == golden["records"]
        produced = {
            rid: res.to_json_dict() for rid, res in sorted(report.results.items())
        }
        assert produced == golden["results"]

    def test_fifo_is_the_default(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        fleet = TTSFleet(baseline_config(memory_fraction=0.4), dataset)
        assert fleet.scheduler.name == "fifo"


class TestSjf:
    def test_improves_mean_queueing_under_contention(self):
        fifo = drain("fifo", rate=0.2, size=8, fast=True).metrics
        sjf = drain("sjf", rate=0.2, size=8, fast=True).metrics
        assert sjf.queue_delay_mean_s < fifo.queue_delay_mean_s
        assert sjf.latency_mean_s < fifo.latency_mean_s

    def test_same_answers_as_fifo(self):
        fifo = drain("fifo", rate=0.2, size=8, fast=True)
        sjf = drain("sjf", rate=0.2, size=8, fast=True)
        for rid, result in fifo.results.items():
            assert answer_signature(sjf.results[rid]) == answer_signature(result)

    def test_predict_cost_deterministic(self):
        dataset = build_dataset("amc23", seed=0, size=2)
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        algo = build_algorithm("beam_search", 4)
        problem = list(dataset)[0]
        a = predict_cost(server, problem, algo)
        b = predict_cost(server, problem, algo)
        assert a == b
        assert a[0] >= 1 and a[1] > 0


class TestRoundRobin:
    def test_improves_p95_queueing_delay(self):
        fifo = drain("fifo", rate=0.2, size=8, fast=True).metrics
        rr = drain("round_robin", rate=0.2, size=8, fast=True).metrics
        assert rr.queue_delay_p95_s < fifo.queue_delay_p95_s
        assert rr.queue_delay_mean_s < fifo.queue_delay_mean_s

    def test_interleaving_keeps_busy_fraction_physical(self):
        rr = drain("round_robin", rate=1.0, size=6, fast=True).metrics
        assert 0.0 < rr.busy_fraction <= 1.0

    def test_same_answers_as_fifo(self):
        fifo = drain("fifo", rate=0.2, size=8, fast=True)
        rr = drain("round_robin", rate=0.2, size=8, fast=True)
        for rid, result in fifo.results.items():
            assert answer_signature(rr.results[rid]) == answer_signature(result)

    def test_deterministic(self):
        a = drain("round_robin", rate=0.2, size=4, fast=True)
        b = drain("round_robin", rate=0.2, size=4, fast=True)
        assert a.records == b.records


class TestFirstFinish:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_never_worse_than_fifo_on_same_seed(self, seed):
        """Property: FFS cancellation never degrades the served answer."""
        fifo = drain("fifo", rate=0.2, size=4, seed=seed, fast=True)
        ffs = drain("first_finish", rate=0.2, size=4, seed=seed, fast=True)
        assert set(ffs.results) == set(fifo.results)
        for rid, fifo_result in fifo.results.items():
            assert ffs.results[rid].top1_correct >= fifo_result.top1_correct

    def test_cancelled_work_accounted(self):
        report = drain("first_finish", rate=0.2, size=4, fast=True)
        metrics = report.metrics
        scheduler = build_scheduler("first_finish")
        assert metrics.sessions == metrics.completed * scheduler.replicas
        assert metrics.cancelled_work_s > 0.0
        assert all(r.replicas == scheduler.replicas
                   for r in report.records if r.accepted)
        # device-time accounting: racing replicas never push the one
        # simulated device beyond full utilization
        assert 0.0 < metrics.busy_fraction <= 1.0
        for record in report.records:
            if record.accepted:
                assert record.device_time_s == pytest.approx(
                    record.latency.total + record.cancelled_work_s
                )

    def test_unverified_race_falls_back_to_canonical(self):
        """Requests FIFO answers incorrectly are never answered worse."""
        fifo = drain("fifo", rate=0.2, size=4, fast=True)
        ffs = drain("first_finish", rate=0.2, size=4, fast=True)
        for rid, result in fifo.results.items():
            if not result.top1_correct and not ffs.results[rid].top1_correct:
                # fell back to the canonical replica: identical search
                assert answer_signature(ffs.results[rid]) == answer_signature(result)


class TestComparePolicies:
    def test_renders_all_policies(self):
        metrics = {
            policy: drain(policy, rate=0.2, size=3, fast=True).metrics
            for policy in ("fifo", "round_robin")
        }
        table = compare_policies(metrics, title="cmp")
        assert "fifo" in table and "round_robin" in table
        assert "queue p95 s" in table

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_policies({})
