"""Tests for the generation-round executor (Alg. 1 mechanics)."""

import pytest

from repro.core.generation_round import ChildStepPlan, GenerationRound
from repro.engine.clock import SimClock
from repro.engine.jobs import GenJob
from repro.engine.telemetry import PhaseTimer, UtilizationTracker
from repro.engine.worker import GeneratorWorker
from repro.errors import SchedulingError
from repro.hardware.device import get_device
from repro.hardware.roofline import Roofline
from repro.kvcache.cache import PagedKVCache
from repro.models.zoo import QWEN25_MATH_1P5B as MODEL

PROMPT_SEG = 1000


def make_worker(capacity_tokens=100_000):
    cache = PagedKVCache(capacity_tokens * MODEL.kv_bytes_per_token,
                         MODEL.kv_bytes_per_token)
    cache.register_segment(PROMPT_SEG, None, 64)
    return GeneratorWorker(
        MODEL, Roofline(get_device("rtx4090")), cache, SimClock(),
        PhaseTimer(), UtilizationTracker(),
    )


def make_job(i, tokens, head=0, score=None):
    return GenJob(
        lineage=(i,),
        path_segments=(PROMPT_SEG,),
        path_segment_tokens=(64,),
        new_segment=2000 + i,
        step_tokens=tokens,
        head_start=head,
        prev_score=score,
    )


def child_planner_factory(tokens=32):
    def planner(parent_lineage, child_index):
        return ChildStepPlan(
            child_lineage=parent_lineage + (child_index,),
            segment_id=3000 + 100 * parent_lineage[0] + child_index,
            parent_leaf_segment=2000 + parent_lineage[0],
            n_tokens=tokens,
        )
    return planner


class TestBasicRound:
    def test_all_jobs_complete(self):
        worker = make_worker()
        round_ = GenerationRound(worker, slot_budget=8)
        jobs = [make_job(i, 10 + i) for i in range(4)]
        result = round_.run(jobs)
        assert set(result.outcomes) == {(0,), (1,), (2,), (3,)}
        for i in range(4):
            assert result.outcomes[(i,)].tokens_generated == 10 + i

    def test_empty_round(self):
        result = GenerationRound(make_worker(), slot_budget=4).run([])
        assert result.outcomes == {}
        assert result.stats.round_time == 0.0

    def test_shorter_beams_finish_earlier(self):
        worker = make_worker()
        result = GenerationRound(worker, slot_budget=8).run(
            [make_job(0, 10), make_job(1, 100)]
        )
        assert (
            result.outcomes[(0,)].finish_time < result.outcomes[(1,)].finish_time
        )

    def test_round_time_set_by_straggler(self):
        worker = make_worker()
        result = GenerationRound(worker, slot_budget=8).run(
            [make_job(0, 10), make_job(1, 200)]
        )
        assert result.stats.round_time == pytest.approx(
            result.outcomes[(1,)].finish_time, rel=0.01
        )

    def test_decoded_tokens_counted(self):
        result = GenerationRound(make_worker(), slot_budget=4).run(
            [make_job(0, 25), make_job(1, 35)]
        )
        assert result.stats.decoded_tokens == 60

    def test_head_start_reduces_decoding(self):
        worker = make_worker()
        worker.cache.register_segment(2000, PROMPT_SEG, 15)  # pre-generated
        result = GenerationRound(worker, slot_budget=4).run(
            [make_job(0, 40, head=15)]
        )
        assert result.outcomes[(0,)].tokens_generated == 25

    def test_full_head_start_instant_finish(self):
        worker = make_worker()
        worker.cache.register_segment(2000, PROMPT_SEG, 40)
        result = GenerationRound(worker, slot_budget=4).run(
            [make_job(0, 40, head=40)]
        )
        assert result.outcomes[(0,)].tokens_generated == 0


class TestWaves:
    def test_slot_budget_respected(self):
        worker = make_worker()
        round_ = GenerationRound(worker, slot_budget=2)
        result = round_.run([make_job(i, 20) for i in range(6)])
        assert len(result.outcomes) == 6
        for span in worker._util.spans:
            assert span.busy_slots <= 2

    def test_continuous_beam_batching_refills(self):
        """Freed slots admit waiting beams (Phase 1)."""
        worker = make_worker()
        round_ = GenerationRound(worker, slot_budget=2)
        result = round_.run([make_job(0, 5), make_job(1, 50), make_job(2, 5)])
        # job 2 starts when job 0's slot frees, well before job 1 ends
        assert result.outcomes[(2,)].finish_time < result.outcomes[(1,)].finish_time

    def test_stall_detected(self):
        worker = make_worker(capacity_tokens=96)  # prompt barely fits
        round_ = GenerationRound(worker, slot_budget=2)
        with pytest.raises(SchedulingError):
            round_.run([make_job(0, 2000)])


class TestSpeculation:
    def test_spec_fills_idle_slots(self):
        worker = make_worker()
        round_ = GenerationRound(
            worker, slot_budget=2, speculation=True, branching_factor=4,
            child_planner=child_planner_factory(tokens=100),
        )
        result = round_.run([make_job(0, 5, score=0.9), make_job(1, 60)])
        assert result.stats.speculative_tokens > 0
        assert any(s.speculative_slots > 0 for s in worker._util.spans)

    def test_spec_strictly_terminated_with_stragglers(self):
        """Speculation never extends the round beyond the last straggler."""
        plain_worker = make_worker()
        plain = GenerationRound(plain_worker, slot_budget=2).run(
            [make_job(0, 5), make_job(1, 60)]
        )
        spec_worker = make_worker()
        spec = GenerationRound(
            spec_worker, slot_budget=2, speculation=True, branching_factor=4,
            child_planner=child_planner_factory(tokens=1000),
        ).run([make_job(0, 5, score=0.9), make_job(1, 60)])
        assert spec.stats.round_time == pytest.approx(
            plain.stats.round_time, rel=0.05
        )

    def test_partial_spec_recorded_as_head_start(self):
        worker = make_worker()
        round_ = GenerationRound(
            worker, slot_budget=2, speculation=True, branching_factor=4,
            child_planner=child_planner_factory(tokens=1000),  # can't finish
        )
        result = round_.run([make_job(0, 5, score=0.9), make_job(1, 60)])
        assert result.head_starts
        head = next(iter(result.head_starts.values()))
        assert 0 < head.tokens < 1000

    def test_completed_spec_head_is_full_step(self):
        worker = make_worker()
        round_ = GenerationRound(
            worker, slot_budget=2, speculation=True, branching_factor=4,
            child_planner=child_planner_factory(tokens=10),
        )
        result = round_.run([make_job(0, 5, score=0.9), make_job(1, 300)])
        full = [h for h in result.head_starts.values() if h.tokens == 10]
        assert full

    def test_high_score_beams_speculate_first(self):
        worker = make_worker()
        claims = []
        base_planner = child_planner_factory(tokens=500)

        def recording_planner(parent, child):
            claims.append(parent)
            return base_planner(parent, child)

        round_ = GenerationRound(
            worker, slot_budget=3, speculation=True, branching_factor=4,
            child_planner=recording_planner,
        )
        round_.run([
            make_job(0, 5, score=0.95),
            make_job(1, 5, score=0.05),
            make_job(2, 200),
        ])
        assert claims[0] == (0,)

    def test_terminal_beams_not_speculated(self):
        worker = make_worker()

        def no_children(parent, child):
            return None

        round_ = GenerationRound(
            worker, slot_budget=2, speculation=True, branching_factor=4,
            child_planner=no_children,
        )
        result = round_.run([make_job(0, 5), make_job(1, 50)])
        assert result.stats.speculative_tokens == 0

    def test_preemption_halts_speculation(self):
        worker = make_worker()
        calls = {"n": 0}

        def preempt_after_a_while():
            calls["n"] += 1
            return calls["n"] > 3

        round_ = GenerationRound(
            worker, slot_budget=2, speculation=True, branching_factor=4,
            child_planner=child_planner_factory(tokens=5000),
            preempt_check=preempt_after_a_while,
        )
        result = round_.run([make_job(0, 5, score=0.9), make_job(1, 400)])
        # standard work still completes; speculation was cut short
        assert set(result.outcomes) == {(0,), (1,)}

    def test_speculation_requires_planner(self):
        with pytest.raises(ValueError):
            GenerationRound(make_worker(), slot_budget=2, speculation=True)


class TestSlotChurn:
    """Mid-burst slot turnover: frees, refills and stalls (ISSUE 6)."""

    def test_mid_burst_free_and_refill(self):
        """With fewer slots than jobs, every freed slot is refilled from
        the waiting queue mid-round and every job still completes."""
        worker = make_worker()
        round_ = GenerationRound(worker, slot_budget=2)
        lengths = [5, 80, 10, 15, 20]
        result = round_.run([make_job(i, n) for i, n in enumerate(lengths)])
        assert set(result.outcomes) == {(i,) for i in range(5)}
        for i, n in enumerate(lengths):
            assert result.outcomes[(i,)].tokens_generated == n
        for span in worker._util.spans:
            assert span.busy_slots <= 2
        # Jobs 2..4 only run in slots freed mid-burst, so each must start
        # strictly inside the round, not at t=0 with the first wave.
        finishes = sorted(result.outcomes[(i,)].finish_time for i in range(5))
        assert finishes[0] < finishes[-1]
        assert result.outcomes[(4,)].finish_time < result.outcomes[(1,)].finish_time

    def test_stuck_batch_raises_scheduling_error(self):
        """A waiting beam that can never be admitted must raise, not spin."""
        worker = make_worker(capacity_tokens=96)  # prompt barely fits
        round_ = GenerationRound(worker, slot_budget=4)
        with pytest.raises(SchedulingError, match="stalled"):
            round_.run([make_job(i, 500) for i in range(3)])

    def test_first_token_time_recorded(self):
        result = GenerationRound(make_worker(), slot_budget=4).run(
            [make_job(0, 10), make_job(1, 30)]
        )
        assert result.stats.first_token_time is not None
        assert 0.0 < result.stats.first_token_time <= result.stats.round_time

    def test_empty_round_has_no_first_token(self):
        result = GenerationRound(make_worker(), slot_budget=4).run([])
        assert result.stats.first_token_time is None


class TestAdmissionOrderDeterminism:
    """Batched prefill charging must not depend on admission order: the
    same job set reordered yields the same round time and token counts."""

    LENGTHS = [12, 47, 23, 8, 31, 19]

    def run_order(self, order):
        jobs = [make_job(i, self.LENGTHS[i]) for i in order]
        return GenerationRound(make_worker(), slot_budget=8).run(jobs)

    def test_reordered_admission_identical_round(self):
        forward = self.run_order(range(6))
        shuffled = self.run_order([3, 0, 5, 1, 4, 2])
        assert shuffled.stats.round_time == forward.stats.round_time
        assert shuffled.stats.decoded_tokens == forward.stats.decoded_tokens
        assert shuffled.stats.prefilled_tokens == forward.stats.prefilled_tokens
        assert shuffled.stats.first_token_time == forward.stats.first_token_time
        for lineage, outcome in forward.outcomes.items():
            assert (
                shuffled.outcomes[lineage].tokens_generated
                == outcome.tokens_generated
            )

    def test_reversed_admission_identical_round(self):
        forward = self.run_order(range(6))
        reverse = self.run_order(reversed(range(6)))
        assert reverse.stats.round_time == forward.stats.round_time
        assert reverse.stats.decoded_tokens == forward.stats.decoded_tokens


class TestAlgorithmicEquivalence:
    def test_outcome_tokens_independent_of_speculation(self):
        """Speculation changes timing, never the generated step lengths."""
        jobs = [make_job(i, 20 + 7 * i, score=0.5) for i in range(4)]
        plain = GenerationRound(make_worker(), slot_budget=4).run(
            [make_job(i, 20 + 7 * i, score=0.5) for i in range(4)]
        )
        spec = GenerationRound(
            make_worker(), slot_budget=4, speculation=True, branching_factor=4,
            child_planner=child_planner_factory(),
        ).run(jobs)
        for lineage, outcome in plain.outcomes.items():
            assert spec.outcomes[lineage].tokens_generated == outcome.tokens_generated
