"""Cross-session KV prefix sharing: SharedKVLedger through the fleet.

Acceptance contract (ISSUE 5): with ``kv_sharing="prefix"`` on a single
lane running co-resident sessions of the same problem, total swap time
and peak resident bytes are strictly lower than the dedup-off baseline
at identical answers; ``kv_sharing="off"`` stays byte-identical to
``tests/goldens/fleet_fifo_goldens.json``.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.core.pool import DevicePool, PooledDevice
from repro.core.scheduler import FirstFinishScheduler, PrefixAffinityScheduler
from repro.core.server import TTSServer
from repro.core.session import planned_kv_segments
from repro.errors import ConfigError
from repro.hardware.memory import SharedKVLedger
from repro.metrics.accuracy import majority_answer
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset


def answer_signature(report):
    return {
        rid: sorted((b.lineage, b.answer, b.correct, b.score) for b in res.beams)
        for rid, res in report.results.items()
    }


def racing_fleet(kv_sharing, scheduler="round_robin", memory_fraction=0.34):
    """Two co-resident sessions of the *same* problem on one lane.

    0.34 of a 4090 fits either n=16 session alone, and fits both when
    their shared prefix is deduplicated — but not when each is billed its
    full footprint, so the dedup-off ledger thrashes.
    """
    dataset = build_dataset("amc23", seed=0, size=2)
    config = fasttts_config(memory_fraction=memory_fraction, seed=0)
    fleet = TTSFleet(
        config, dataset, scheduler=scheduler, kv_sharing=kv_sharing
    )
    problem = list(dataset)[0]
    fleet.submit(problem, build_algorithm("beam_search", 16), 0.0)
    fleet.submit(problem, build_algorithm("beam_search", 16), 1.0)
    return fleet.drain()


@pytest.fixture(scope="module")
def race_off():
    return racing_fleet("off")


@pytest.fixture(scope="module")
def race_prefix():
    return racing_fleet("prefix")


class TestAcceptance:
    """The dedup makes replica racing cheaper, not differently scheduled."""

    def test_swap_time_strictly_lower(self, race_off, race_prefix):
        assert race_off.metrics.kv_swap_s > 0.0
        assert race_prefix.metrics.kv_swap_s < race_off.metrics.kv_swap_s

    def test_peak_resident_bytes_strictly_lower(self, race_off, race_prefix):
        peak_off = race_off.devices[0].kv_peak_resident_bytes
        peak_on = race_prefix.devices[0].kv_peak_resident_bytes
        assert 0 < peak_on < peak_off

    def test_answers_identical(self, race_off, race_prefix):
        assert answer_signature(race_prefix) == answer_signature(race_off)

    def test_sharing_stats_surface(self, race_off, race_prefix):
        assert race_off.kv_sharing == "off"
        assert race_prefix.kv_sharing == "prefix"
        assert race_off.metrics.kv_shared_bytes == 0
        assert race_off.metrics.kv_dedup_ratio == 1.0
        assert race_prefix.metrics.kv_shared_bytes > 0
        assert race_prefix.metrics.kv_dedup_ratio > 1.0
        lane = race_prefix.devices[0]
        assert lane.kv_shared_bytes > 0
        assert lane.kv_dedup_ratio > 1.0
        assert "dedup" in race_prefix.device_table()

    def test_faster_wall_clock_too(self, race_off, race_prefix):
        """Less swap is real time: the deduped run finishes sooner."""
        assert race_prefix.metrics.makespan_s < race_off.metrics.makespan_s


class TestFirstFinishReplicas:
    """FFS forks sample different tokens, so only the rng-independent
    prompt dedups — still enough to cut swap traffic strictly."""

    @staticmethod
    def run(kv_sharing):
        dataset = build_dataset("amc23", seed=0, size=1)
        config = fasttts_config(memory_fraction=0.32, seed=0)
        fleet = TTSFleet(
            config, dataset,
            scheduler=FirstFinishScheduler(replicas=2),
            kv_sharing=kv_sharing,
        )
        fleet.submit(list(dataset)[0], build_algorithm("beam_search", 16), 0.0)
        return fleet.drain()

    def test_replica_race_swap_strictly_lower_same_answers(self):
        off = self.run("off")
        on = self.run("prefix")
        assert off.metrics.kv_swap_s > 0.0
        assert on.metrics.kv_swap_s < off.metrics.kv_swap_s
        assert answer_signature(on) == answer_signature(off)
        assert on.metrics.kv_shared_bytes > 0  # the shared prompt


class TestOffIsByteIdenticalToGoldens:
    def test_fifo_open_busy_reproduced_with_explicit_off(self):
        golden = json.loads(
            (Path(__file__).parent.parent / "goldens"
             / "fleet_fifo_goldens.json").read_text()
        )["open-busy"]
        dataset = build_dataset("amc23", seed=0, size=5)
        fleet = TTSFleet(
            baseline_config(memory_fraction=0.4, seed=0), dataset,
            scheduler="fifo", kv_sharing="off",
        )
        arrivals = generate_arrivals(5, 0.05, seed=0)
        fleet.submit_stream(
            list(dataset), build_algorithm("beam_search", 4), arrivals
        )
        report = fleet.drain()
        produced = [
            {
                "request_id": r.request_id,
                "arrival_s": r.arrival_s,
                "start_s": r.start_s,
                "finish_s": r.finish_s,
                "accepted": r.accepted,
                "reject_reason": r.reject_reason,
                "latency": r.latency.to_json_dict() if r.latency else None,
            }
            for r in report.records
        ]
        assert produced == golden["records"]
        assert {
            rid: res.to_json_dict() for rid, res in sorted(report.results.items())
        } == golden["results"]


class TestKvSegments:
    @staticmethod
    def server(seed=0):
        dataset = build_dataset("amc23", seed=seed, size=1)
        return TTSServer(fasttts_config(memory_fraction=0.4, seed=seed), dataset)

    def test_claims_sum_to_resident_bytes(self):
        server = self.server()
        problem = list(server.dataset)[0]
        session = server.session(problem, build_algorithm("beam_search", 4))
        assert session.kv_segments() == ()
        for _ in range(5):
            session.step()
        claims = session.kv_segments()
        assert claims
        assert sum(c.num_bytes for c in claims) == session.resident_kv_bytes
        # parents precede children, every parent id is itself claimed
        seen = set()
        for claim in claims:
            assert claim.parent_id is None or claim.parent_id in seen
            seen.add(claim.node_id)

    def test_canonical_sessions_share_all_segments(self):
        server = self.server()
        problem = list(server.dataset)[0]
        a = server.session(problem, build_algorithm("beam_search", 4))
        b = server.session(problem, build_algorithm("beam_search", 4))
        for _ in range(5):
            a.step()
            b.step()
        assert a.kv_namespace is None and b.kv_namespace is None
        ids_a = {c.node_id for c in a.kv_segments()}
        ids_b = {c.node_id for c in b.kv_segments()}
        assert ids_a == ids_b  # same rng, same progress: full overlap

    def test_forked_rng_session_shares_only_roots(self):
        server = self.server()
        problem = list(server.dataset)[0]
        canonical = server.session(problem, build_algorithm("beam_search", 4))
        fork = server.session(
            problem, build_algorithm("beam_search", 4),
            rng=server.rng.fork("ffs-replica", "req", 1), session_id="req/r1",
        )
        for _ in range(5):
            canonical.step()
            fork.step()
        assert fork.kv_namespace == "req/r1"
        roots_c = {c.node_id for c in canonical.kv_segments() if c.parent_id is None}
        roots_f = {c.node_id for c in fork.kv_segments() if c.parent_id is None}
        assert roots_c == roots_f  # prompt content is rng-independent
        steps_c = {c.node_id for c in canonical.kv_segments() if c.parent_id is not None}
        steps_f = {c.node_id for c in fork.kv_segments() if c.parent_id is not None}
        assert not steps_c & steps_f  # divergent tokens never dedup


class TestPrefixAffinityScheduler:
    def test_registered_and_described(self):
        from repro.core.scheduler import list_schedulers, scheduler_descriptions

        assert "prefix_affinity" in list_schedulers()
        assert scheduler_descriptions()["prefix_affinity"]

    def test_cuts_swap_versus_round_robin(self, race_prefix):
        affinity = racing_fleet("prefix", scheduler="prefix_affinity")
        assert affinity.metrics.kv_swap_s <= race_prefix.metrics.kv_swap_s
        assert answer_signature(affinity) == answer_signature(race_prefix)

    def test_deterministic(self):
        a = racing_fleet("prefix", scheduler="prefix_affinity")
        b = racing_fleet("prefix", scheduler="prefix_affinity")
        assert a.records == b.records

    def test_fallback_groups_same_problem(self):
        """Without a shared ledger the policy degrades to lineage grouping."""
        from repro.core.scheduler import SessionHandle
        from repro.engine.clock import ClockBinding

        server = self.any_server()
        problems = list(server.dataset)
        algorithm = build_algorithm("beam_search", 4)

        def handle(problem, seq, arrival):
            session = server.session(
                problem, algorithm, session_id=f"req-{seq:04d}/r0"
            )
            return SessionHandle(
                request_id=f"req-{seq:04d}", arrival_s=arrival, seq=seq,
                replica=0, session=session, binding=ClockBinding(session.clock),
            )

        handles = [
            handle(problems[1], 0, 0.0),
            handle(problems[0], 1, 1.0),
            handle(problems[1], 2, 2.0),
        ]
        policy = PrefixAffinityScheduler()
        pick = policy.pick(handles, 0.0)
        # lowest problem id first; its same-problem sibling would follow
        assert pick is handles[1]

    @staticmethod
    def any_server():
        dataset = build_dataset("amc23", seed=0, size=2)
        return TTSServer(fasttts_config(memory_fraction=0.4, seed=0), dataset)


def sharing_pool_run(scheduler, placement):
    """Six beam_search(8) requests on a two-lane rtx4090 sharing pool.

    The mix is two of problem 5 then four of problem 1, 6.5 s apart. At
    ``verify_threshold=0.95`` problem 1's canonical replica peaks at 0.93
    confidence and can never settle its own race, while its fork verifies
    at 0.96 *and* runs ~30% faster — so first-finish racing genuinely
    shortens every problem-1 request. Problem 5 is the opposite (only the
    canonical verifies), which keeps racing honest: a scheduler that
    always waited for forks would lose on it.
    """
    dataset = build_dataset("amc23", seed=0, size=8)
    config = fasttts_config(memory_fraction=0.4, seed=0)
    fleet = TTSFleet(
        config, dataset, scheduler=scheduler,
        devices=["rtx4090", "rtx4090"], placement=placement,
        kv_sharing="prefix",
    )
    problems = list(dataset)
    for i, pick in enumerate([5, 5, 1, 1, 1, 1]):
        fleet.submit(problems[pick], build_algorithm("beam_search", 8), i * 6.5)
    return fleet.drain()


def racing():
    return FirstFinishScheduler(replicas=2, verify_threshold=0.95)


@pytest.fixture(scope="module")
def combined_run():
    """Racing scheduler *and* sharing-aware placement."""
    return sharing_pool_run(racing(), "prefix_affinity")


@pytest.fixture(scope="module")
def racing_alone_run():
    """Racing with the fleet's default placement (first_fit)."""
    return sharing_pool_run(racing(), "first_fit")


@pytest.fixture(scope="module")
def affinity_alone_run():
    """Sharing-aware placement without racing."""
    return sharing_pool_run("fifo", "prefix_affinity")


class TestPlacementRacingSynergy:
    """ISSUE 10 headline: ``first_finish`` racing plus ``prefix_affinity``
    placement strictly beats either mechanism alone on p95 sojourn.

    Affinity keeps problem-5 canonicals clustered on the lane that holds
    their prefix and routes problem-1 work to the other lane, so the
    race-settling forks never queue behind an unrelated canonical stream;
    first_fit lumps every canonical onto lane 0 and every fork onto
    lane 1, and fifo forgoes the racing win on problem 1 entirely.
    """

    def test_combined_strictly_beats_both_baselines_on_p95(
        self, combined_run, racing_alone_run, affinity_alone_run
    ):
        p95 = combined_run.metrics.latency_p95_s
        assert p95 < racing_alone_run.metrics.latency_p95_s
        assert p95 < affinity_alone_run.metrics.latency_p95_s

    def test_all_three_agree_on_every_answer(
        self, combined_run, racing_alone_run, affinity_alone_run
    ):
        # FFS records the *winning* replica's beams, fifo the canonical's;
        # beam signatures legitimately differ, majority answers must not.
        def answers(report):
            return {
                rid: majority_answer(res.beams)
                for rid, res in report.results.items()
            }

        assert (
            answers(combined_run)
            == answers(racing_alone_run)
            == answers(affinity_alone_run)
        )
        assert len(answers(combined_run)) == 6  # nothing rejected anywhere

    def test_affinity_metrics_populated_on_the_combined_run(
        self, combined_run
    ):
        m = combined_run.metrics
        # Repeat problems land on lanes already holding their prefix...
        assert 0.0 < m.affinity_hit_ratio <= 1.0
        # ...and dedup-aware admission billed less than the full plans.
        assert 0 < m.kv_unique_admitted_bytes < m.kv_planned_admitted_bytes
        rows = {row[0] for row in m.summary_rows()}
        assert {
            "affinity hit ratio",
            "kv planned admitted MB",
            "kv unique admitted MB",
            "kv migration saved MB",
        } <= rows

    def test_per_lane_affinity_counters_roll_up(self, combined_run):
        lanes = combined_run.devices
        assert sum(d.placements for d in lanes) == 6
        assert sum(d.affinity_hits for d in lanes) > 0
        assert sum(d.unique_admitted_bytes for d in lanes) == (
            combined_run.metrics.kv_unique_admitted_bytes
        )


class TestDedupAwareAdmission:
    """ISSUE 10: deny-mode admission bills *unique* planned bytes, so a
    same-prefix burst that full-footprint billing rejects is admitted."""

    @staticmethod
    def burst(kv_sharing):
        dataset = build_dataset("amc23", seed=0, size=8)
        config = fasttts_config(memory_fraction=0.6, seed=0)
        fleet = TTSFleet(
            config, dataset, scheduler="fifo", devices=["rtx4090"],
            kv_sharing=kv_sharing, oversubscription="deny",
        )
        lane = fleet.pool[0]
        problem = list(dataset)[1]
        footprint = lane.server.plan_allocation(8).kv_total_bytes
        overlap = sum(
            claim.num_bytes
            for claim in planned_kv_segments(lane.server, problem)
        )
        # Room for one full plan plus one dedup-billed plan — and nothing
        # more: only prefix-aware billing can admit the second request.
        lane.ledger.resize(2 * footprint - overlap)
        fleet.submit(problem, build_algorithm("beam_search", 8), 0.0)
        fleet.submit(problem, build_algorithm("beam_search", 8), 0.0)
        return fleet.drain(), footprint, overlap

    def test_sharing_admits_the_burst_full_footprint_rejects_it(self):
        shared, footprint, overlap = self.burst("prefix")
        whole, _, _ = self.burst("off")
        assert [r.accepted for r in shared.records] == [True, True]
        assert [r.accepted for r in whole.records] == [True, False]
        assert "oversubscribe" in whole.records[1].reject_reason
        # The admission books say exactly what was deduplicated.
        assert shared.metrics.kv_planned_admitted_bytes == 2 * footprint
        assert shared.metrics.kv_unique_admitted_bytes == (
            2 * footprint - overlap
        )

    def test_whole_session_ledger_reports_no_dedup_billing(self):
        whole, _, _ = self.burst("off")
        assert whole.metrics.kv_planned_admitted_bytes == 0
        assert whole.metrics.kv_unique_admitted_bytes == 0
        assert whole.metrics.affinity_hit_ratio == 0.0


class TestConfiguration:
    def test_bad_kv_sharing_rejected(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        with pytest.raises(ConfigError, match="kv_sharing"):
            TTSFleet(
                baseline_config(memory_fraction=0.4), dataset, kv_sharing="on"
            )

    def test_prepared_pool_owns_its_ledgers(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        pool = DevicePool.build(baseline_config(memory_fraction=0.4), dataset)
        with pytest.raises(ConfigError, match="ledgers"):
            TTSFleet(pool=pool, kv_sharing="prefix")

    def test_pool_build_with_sharing(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        pool = DevicePool.build(
            baseline_config(memory_fraction=0.4), dataset, kv_sharing="prefix"
        )
        assert isinstance(pool[0].ledger, SharedKVLedger)
        assert pool[0].ledger.segment_granular
        # and a fleet over it reports the sharing mode
        fleet = TTSFleet(pool=pool)
        fleet.submit(list(dataset)[0], build_algorithm("beam_search", 4), 0.0)
        assert fleet.drain().kv_sharing == "prefix"

    def test_pooled_device_validates_mode(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        with pytest.raises(ConfigError, match="kv_sharing"):
            PooledDevice(index=0, server=server, kv_sharing="dedup")
