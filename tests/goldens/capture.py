"""Regenerate the serving goldens in this directory.

Run from the repo root::

    PYTHONPATH=src python tests/goldens/capture.py             # all goldens
    PYTHONPATH=src python tests/goldens/capture.py --filter fleet

The goldens pin the exact observable behaviour of the serving loop —
per-problem results, round-level traces, and FIFO fleet records — so that
refactors of the solve loop (e.g. the SolveSession state machine, the
DevicePool fleet redesign) can assert byte-identity against the original
monolithic implementation. ``--filter`` regenerates a named subset
(``solve``, ``fleet``, ``sharing`` — the fleet runs with ``--kv-sharing
off`` spelled out, ``batching`` — same with ``--batching off``,
``openloop`` — same with ``--late-policy serve_late``, ``faults`` — same
with ``--faults off``, ``routing`` — same with ``--router off``,
``placement`` — same with ``--placement first_fit``) instead of
everything — handy when one golden family legitimately changed and the
others must provably not.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.core.server import TTSServer
from repro.search.registry import build_algorithm, list_algorithms
from repro.workloads.datasets import build_dataset

HERE = Path(__file__).parent

SOLVE_N = 8
SOLVE_SEED = 3
FLEET_SEED = 0


def capture_solves() -> dict:
    dataset = build_dataset("amc23", seed=SOLVE_SEED, size=2)
    problem = list(dataset)[0]
    cells = {}
    for system, factory in (("baseline", baseline_config), ("fasttts", fasttts_config)):
        for algorithm_name in list_algorithms():
            server = TTSServer(factory(memory_fraction=0.4, seed=SOLVE_SEED), dataset)
            outcome = server.solve_detailed(
                problem, build_algorithm(algorithm_name, SOLVE_N), trace=True
            )
            cells[f"{system}/{algorithm_name}"] = {
                "result": outcome.result.to_json_dict(),
                "trace": outcome.trace.to_jsonl(),
            }
    # Arrival preemption: a request lands mid-solve and halts speculation.
    for label, arrivals in (
        ("fasttts/beam_search/preempt-mid", (5.0,)),
        ("fasttts/beam_search/preempt-immediate", (-1.0, 4.0)),
    ):
        server = TTSServer(fasttts_config(memory_fraction=0.4, seed=SOLVE_SEED), dataset)
        outcome = server.solve_detailed(
            problem, build_algorithm("beam_search", SOLVE_N),
            arrivals=arrivals, trace=True,
        )
        cells[label] = {
            "result": outcome.result.to_json_dict(),
            "trace": outcome.trace.to_jsonl(),
        }
    return cells


def _record_dict(record) -> dict:
    return {
        "request_id": record.request_id,
        "arrival_s": record.arrival_s,
        "start_s": record.start_s,
        "finish_s": record.finish_s,
        "accepted": record.accepted,
        "reject_reason": record.reject_reason,
        "latency": record.latency.to_json_dict() if record.latency else None,
    }


def capture_fleet(
    kv_sharing: str = "off",
    batching: str = "off",
    late_policy: str = "serve_late",
    faults: str = "off",
    recovery: str = "failover",
    router: str = "off",
    placement: str = "first_fit",
) -> dict:
    runs = {}
    for label, rate, max_in_flight in (
        ("open-slow", 0.005, None),
        ("open-busy", 0.05, None),
        ("capped-saturated", 1.0, 2),
    ):
        dataset = build_dataset("amc23", seed=FLEET_SEED, size=5)
        config = baseline_config(memory_fraction=0.4, seed=FLEET_SEED)
        fleet = TTSFleet(
            config, dataset, max_in_flight=max_in_flight,
            kv_sharing=kv_sharing, batching=batching,
            late_policy=late_policy,
            faults=faults, recovery=recovery,
            router=router, placement=placement,
        )
        arrivals = generate_arrivals(len(dataset), rate, seed=FLEET_SEED)
        fleet.submit_stream(list(dataset), build_algorithm("beam_search", 4), arrivals)
        report = fleet.drain()
        runs[label] = {
            "records": [_record_dict(r) for r in report.records],
            "results": {
                rid: res.to_json_dict() for rid, res in sorted(report.results.items())
            },
        }
    return runs


def capture_sharing() -> dict:
    """The fleet goldens again, with ``kv_sharing="off"`` spelled out.

    Writes the *same* file as the ``fleet`` family: the explicit
    dedup-off ledger path must stay byte-identical to the default one,
    so regenerating this subset and diffing against the committed golden
    is exactly the CI assertion that ``--kv-sharing off`` never drifts.
    """
    return capture_fleet(kv_sharing="off")


def capture_batching() -> dict:
    """The fleet goldens again, with ``batching="off"`` spelled out.

    Same contract as ``sharing``: the explicit run-to-completion path
    must stay byte-identical to the default fleet golden, so
    regenerating this subset and diffing is the CI assertion that
    ``--batching off`` never drifts.
    """
    return capture_fleet(batching="off")


def capture_faults() -> dict:
    """The fleet goldens again, with ``faults="off"`` spelled out.

    Same contract as ``sharing``/``batching``/``openloop``: a fleet
    constructed with explicit ``faults="off"`` builds no injector and
    draws nothing from the keyed RNG, so regenerating this subset and
    diffing is the CI assertion that the fault subsystem never perturbs
    fault-free serving.
    """
    return capture_fleet(faults="off")


def capture_routing() -> dict:
    """The fleet goldens again, with ``router="off"`` spelled out.

    Same contract as the other assertion-only families: a single-lane
    homogeneous fleet constructed with explicit ``router="off"`` builds
    no routing policy and never narrows the eligible-lane set, so
    regenerating this subset and diffing is the CI assertion that the
    heterogeneous-routing subsystem never perturbs routerless serving.
    """
    return capture_fleet(router="off")


def capture_openloop() -> dict:
    """The fleet goldens again, with ``late_policy="serve_late"`` spelled out.

    Same contract as ``sharing``/``batching``: deadline-free closed-loop
    runs through the open-loop-capable drain must stay byte-identical to
    the default fleet golden, so regenerating this subset and diffing is
    the CI assertion that the trace/SLO subsystem never perturbs
    closed-loop serving.
    """
    return capture_fleet(late_policy="serve_late")


def capture_placement() -> dict:
    """The fleet goldens again, with ``placement="first_fit"`` spelled out.

    Same contract as the other assertion-only families: the default
    placement policy named explicitly must stay byte-identical to the
    default fleet golden, so regenerating this subset and diffing is the
    CI assertion that the placement subsystem (including the
    sharing-aware ``prefix_affinity`` policy riding in the same registry)
    never perturbs default-placed serving.
    """
    return capture_fleet(placement="first_fit")


# golden family name -> (output file, capture function)
GOLDENS = {
    "solve": ("solve_goldens.json", capture_solves),
    "fleet": ("fleet_fifo_goldens.json", capture_fleet),
    "sharing": ("fleet_fifo_goldens.json", capture_sharing),
    "batching": ("fleet_fifo_goldens.json", capture_batching),
    "openloop": ("fleet_fifo_goldens.json", capture_openloop),
    "faults": ("fleet_fifo_goldens.json", capture_faults),
    "routing": ("fleet_fifo_goldens.json", capture_routing),
    "placement": ("fleet_fifo_goldens.json", capture_placement),
}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--filter",
        action="append",
        choices=sorted(GOLDENS),
        default=None,
        metavar="NAME",
        help="golden family to regenerate (repeatable; "
             f"one of: {', '.join(sorted(GOLDENS))}; default: all)",
    )
    args = parser.parse_args(argv)
    # "sharing", "batching", "openloop", "faults", "routing", and
    # "placement" are assertion-only subsets (byte-for-byte the fleet
    # family with the dedup-off ledger / run-to-completion / serve-late /
    # injector-off / router-off / first-fit path spelled out); the
    # default run skips them so the fleet simulation is not executed
    # seven times.
    selected = (
        args.filter if args.filter
        else sorted(
            set(GOLDENS)
            - {"sharing", "batching", "openloop", "faults", "routing",
               "placement"}
        )
    )
    for name in selected:
        filename, capture = GOLDENS[name]
        (HERE / filename).write_text(
            json.dumps(capture(), indent=1, sort_keys=True) + "\n"
        )
        print(f"{name}: wrote {HERE / filename}")


if __name__ == "__main__":
    main()
