"""Tests for the golden-capture script's argument handling.

The captures themselves are exercised by CI's golden-drift job (regenerate
and diff); here we only pin the ``--filter`` contract: named subsets are
selectable and unknown names fail fast with the usual argparse exit-2,
before any golden is (re)written.
"""

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).parent
REPO = HERE.parent.parent


def run_capture(*args):
    return subprocess.run(
        [sys.executable, str(HERE / "capture.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src")},
    )


class TestCaptureFilter:
    def test_unknown_filter_rejected_before_writing(self):
        before = {
            path.name: path.stat().st_mtime_ns
            for path in HERE.glob("*.json")
        }
        proc = run_capture("--filter", "bogus")
        assert proc.returncode == 2
        assert "invalid choice" in proc.stderr
        after = {
            path.name: path.stat().st_mtime_ns
            for path in HERE.glob("*.json")
        }
        assert after == before  # nothing regenerated

    def test_help_names_the_golden_families(self):
        proc = run_capture("--help")
        assert proc.returncode == 0
        assert "fleet" in proc.stdout and "solve" in proc.stdout
