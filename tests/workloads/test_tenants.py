"""Tenant specs: parsing, derived arrivals, and trace generation."""

import pytest

from repro.errors import ConfigError
from repro.workloads.arrivals import BurstyProcess, DiurnalProcess, PoissonProcess
from repro.workloads.tenants import TenantSpec, generate_trace
from repro.workloads.trace import materialize_problems


class TestParse:
    def test_full_spec(self):
        spec = TenantSpec.parse(
            "chat:arrival=diurnal,rate=0.05,peak_rate=0.4,period=1200,"
            "dataset=math500,difficulty=hard,algorithm=best_of_n,n=8,"
            "deadline=300,ttft=60,slo=premium,requests=20"
        )
        assert spec.name == "chat"
        assert spec.arrival == "diurnal"
        assert spec.rate_rps == 0.05
        assert spec.peak_rate_rps == 0.4
        assert spec.period_s == 1200.0
        assert spec.dataset == "math500"
        assert spec.difficulty == "hard"
        assert spec.algorithm == "best_of_n"
        assert spec.n == 8
        assert spec.deadline_s == 300.0
        assert spec.ttft_slo_s == 60.0
        assert spec.slo_class == "premium"
        assert spec.requests == 20

    def test_name_optional(self):
        assert TenantSpec.parse("rate=0.1").name == "tenant"
        assert TenantSpec.parse("solo:").name == "solo"

    def test_defaults(self):
        spec = TenantSpec.parse("t:")
        assert spec.arrival == "poisson"
        assert spec.deadline_s is None
        assert spec.slo_class == "standard"

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("", "empty tenant spec"),
            ("t:rate", "key=value"),
            ("t:ratee=1", "did you mean 'rate'"),
            ("t:rate=fast", "needs a float"),
            ("t:n=four", "needs a int"),
            ("t:arrival=posson", "did you mean 'poisson'"),
            ("t:rate=-1", "rate > 0"),
            ("t:deadline=0", "deadline > 0"),
            ("t:ttft=-5", "ttft > 0"),
            ("t:difficulty=extreme", "difficulty must be one of"),
            ("t:dataset=gsm8k", "unknown dataset"),
            ("t:requests=0", "requests >= 1"),
            ("t:n=0", "n >= 1"),
        ],
    )
    def test_errors(self, spec, message):
        with pytest.raises(ConfigError, match=message):
            TenantSpec.parse(spec)

    def test_bad_name_characters(self):
        with pytest.raises(ConfigError, match="tenant name"):
            TenantSpec(name="a=b")


class TestArrivalProcess:
    def test_poisson(self):
        process = TenantSpec.parse("t:rate=0.3").arrival_process()
        assert isinstance(process, PoissonProcess)
        assert process.rate_rps == 0.3

    def test_diurnal_derived_defaults(self):
        process = TenantSpec.parse("t:arrival=diurnal,rate=0.1").arrival_process()
        assert isinstance(process, DiurnalProcess)
        assert process.peak_rate_rps == pytest.approx(0.4)
        assert process.period_s == 3600.0

    def test_bursty_derived_defaults(self):
        process = TenantSpec.parse("t:arrival=bursty,rate=0.1").arrival_process()
        assert isinstance(process, BurstyProcess)
        assert process.burst_rate_rps == pytest.approx(1.0)
        assert (process.on_s, process.off_s) == (60.0, 240.0)

    def test_explicit_parameters_win(self):
        process = TenantSpec.parse(
            "t:arrival=bursty,rate=0.1,burst_rate=2,on_s=5,off_s=9"
        ).arrival_process()
        assert process.burst_rate_rps == 2.0
        assert (process.on_s, process.off_s) == (5.0, 9.0)


class TestGenerateTrace:
    def test_deterministic(self):
        tenants = [TenantSpec.parse("a:rate=0.1"), TenantSpec.parse("b:rate=0.2")]
        assert generate_trace(tenants, seed=5) == generate_trace(tenants, seed=5)
        assert generate_trace(tenants, seed=5) != generate_trace(tenants, seed=6)

    def test_tenant_isolation(self):
        # Adding a tenant never perturbs another tenant's stream.
        a = TenantSpec.parse("a:rate=0.1")
        alone = generate_trace([a], seed=3, default_requests=6)
        paired = generate_trace(
            [a, TenantSpec.parse("b:rate=0.4")], seed=3, default_requests=6
        )
        a_rows = tuple(r for r in paired if r.tenant == "a")
        assert a_rows == alone.requests

    def test_sorted_unique_ids_and_counts(self):
        trace = generate_trace(
            [TenantSpec.parse("a:rate=0.2"), TenantSpec.parse("b:rate=0.2,requests=3")],
            seed=0,
            default_requests=5,
        )
        ids = [r.request_id for r in trace]
        assert len(set(ids)) == len(ids) == 8
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert sum(1 for r in trace if r.tenant == "b") == 3

    def test_slo_fields_stamped(self):
        trace = generate_trace(
            [TenantSpec.parse("a:rate=0.2,deadline=90,ttft=20,slo=gold")], seed=0
        )
        assert all(r.deadline_s == 90.0 for r in trace)
        assert all(r.ttft_slo_s == 20.0 for r in trace)
        assert all(r.slo_class == "gold" for r in trace)

    def test_difficulty_bias(self):
        def mean_difficulty(difficulty: str) -> float:
            trace = generate_trace(
                [TenantSpec.parse(f"t:rate=0.2,difficulty={difficulty},requests=48")],
                seed=2,
            )
            problems = materialize_problems(trace)
            return sum(p.difficulty for p in problems.values()) / len(problems)

        assert mean_difficulty("easy") < mean_difficulty("mixed") < mean_difficulty("hard")

    def test_base_dataset_defaults_to_first_tenant(self):
        trace = generate_trace([TenantSpec.parse("t:dataset=math500,rate=0.1")], seed=0)
        assert trace.base_dataset == "math500"

    def test_errors(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            generate_trace([], seed=0)
        spec = TenantSpec.parse("dup:rate=0.1")
        with pytest.raises(ConfigError, match="duplicate tenant names"):
            generate_trace([spec, spec], seed=0)
        with pytest.raises(ConfigError, match="default_requests"):
            generate_trace([spec], seed=0, default_requests=0)
