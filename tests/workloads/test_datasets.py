"""Tests for synthetic datasets and step-length traces."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import DATASET_PROFILES, build_dataset, list_datasets
from repro.workloads.problem import Dataset, Problem
from repro.workloads.traces import StepLengthModel


class TestStepLengthModel:
    def test_bounds(self):
        model = StepLengthModel(median_tokens=100, sigma=0.8, min_tokens=8, max_tokens=500)
        rng = KeyedRng(0)
        for i in range(200):
            n = model.sample(rng, "k", i)
            assert 8 <= n <= 500

    def test_cap_tightens(self):
        model = StepLengthModel(median_tokens=100, sigma=0.8)
        rng = KeyedRng(0)
        assert all(model.sample(rng, i, cap=32) <= 32 for i in range(50))

    def test_cap_below_min(self):
        model = StepLengthModel(median_tokens=100, sigma=0.8, min_tokens=8)
        assert model.sample(KeyedRng(0), 1, cap=4) == 4

    def test_mean_above_median(self):
        model = StepLengthModel(median_tokens=100, sigma=0.8)
        assert model.mean_tokens > 100

    def test_deterministic(self):
        model = StepLengthModel(median_tokens=100, sigma=0.5)
        rng = KeyedRng(1)
        assert model.sample(rng, "a", 1) == model.sample(rng, "a", 1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StepLengthModel(median_tokens=0, sigma=0.5)
        with pytest.raises(ValueError):
            StepLengthModel(median_tokens=10, sigma=-1)
        with pytest.raises(ValueError):
            StepLengthModel(median_tokens=10, sigma=0.5, min_tokens=20, max_tokens=10)


class TestBuildDataset:
    def test_reproducible(self):
        a = build_dataset("aime24", seed=7, size=5)
        b = build_dataset("aime24", seed=7, size=5)
        assert a.problems == b.problems

    def test_seed_changes_problems(self):
        a = build_dataset("aime24", seed=1, size=5)
        b = build_dataset("aime24", seed=2, size=5)
        assert a.problems != b.problems

    def test_default_sizes(self):
        assert len(build_dataset("aime24")) == 30
        assert len(build_dataset("humaneval")) == 164

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            build_dataset("gsm8k")

    def test_bad_size(self):
        with pytest.raises(ConfigError):
            build_dataset("aime24", size=0)

    def test_all_profiles_buildable(self):
        for name in list_datasets():
            dataset = build_dataset(name, seed=0, size=3)
            assert len(dataset) == 3
            for problem in dataset:
                assert 0 <= problem.answer <= 999
                assert problem.prompt_tokens >= 24

    def test_aime_harder_than_amc(self):
        aime = build_dataset("aime24", seed=0, size=30)
        amc = build_dataset("amc23", seed=0, size=30)
        assert np.mean([p.difficulty for p in aime]) > np.mean(
            [p.difficulty for p in amc]
        )

    def test_aime_steps_longer_than_humaneval(self):
        assert (
            DATASET_PROFILES["aime24"].step_model.mean_tokens
            > DATASET_PROFILES["humaneval"].step_model.mean_tokens
        )


class TestContainers:
    def test_problem_validation(self):
        with pytest.raises(ValueError):
            Problem("x", "d", 1.0, answer=1000, prompt_tokens=10)
        with pytest.raises(ValueError):
            Problem("x", "d", 1.0, answer=5, prompt_tokens=0)

    def test_dataset_validation(self):
        problem = Problem("x", "d", 1.0, answer=5, prompt_tokens=10)
        model = StepLengthModel(median_tokens=10, sigma=0.1)
        with pytest.raises(ValueError):
            Dataset(name="d", problems=(), step_model=model)
        with pytest.raises(ValueError):
            Dataset(name="d", problems=(problem,), step_model=model,
                    min_steps=5, max_steps=2)
        with pytest.raises(ValueError):
            Dataset(name="d", problems=(problem,), step_model=model,
                    termination_rate=0.0)

    def test_dataset_iterates(self):
        dataset = build_dataset("amc23", seed=0, size=4)
        assert len(list(dataset)) == 4
