"""Keyed arrival processes: determinism, shape, and registry errors."""

import pytest

from repro.errors import ConfigError
from repro.utils.rng import KeyedRng
from repro.workloads.arrivals import (
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
    arrival_descriptions,
    build_arrival,
    list_arrivals,
)

PROCESSES = [
    PoissonProcess(rate_rps=0.5),
    DiurnalProcess(rate_rps=0.2, peak_rate_rps=1.0, period_s=600.0),
    BurstyProcess(rate_rps=0.1, burst_rate_rps=1.0, on_s=30.0, off_s=120.0),
]


@pytest.mark.parametrize("process", PROCESSES, ids=lambda p: p.name)
class TestAllProcesses:
    def test_exact_count_strictly_increasing_positive(self, process):
        times = process.times(KeyedRng(3), 25)
        assert len(times) == 25
        assert all(t > 0 for t in times)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_deterministic_per_seed(self, process):
        assert process.times(KeyedRng(7), 12) == process.times(KeyedRng(7), 12)
        assert process.times(KeyedRng(7), 12) != process.times(KeyedRng(8), 12)

    def test_independent_of_interleaved_draws(self, process):
        rng = KeyedRng(5)
        baseline = process.times(rng, 10)
        rng.uniform("unrelated", 0)
        rng.stream("other").normal(size=100)
        assert process.times(rng, 10) == baseline

    def test_prefix_stability(self, process):
        # Asking for more arrivals never changes the earlier ones.
        short = process.times(KeyedRng(2), 6)
        long = process.times(KeyedRng(2), 18)
        assert long[:6] == short

    def test_zero_count(self, process):
        assert process.times(KeyedRng(0), 0) == ()

    def test_negative_count_rejected(self, process):
        with pytest.raises(ValueError):
            process.times(KeyedRng(0), -1)


class TestPoisson:
    def test_mean_gap_tracks_rate(self):
        times = PoissonProcess(rate_rps=0.25).times(KeyedRng(0), 400)
        mean_gap = times[-1] / len(times)
        assert 1 / 0.25 * 0.85 < mean_gap < 1 / 0.25 * 1.15

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            PoissonProcess(rate_rps=0.0)


class TestDiurnal:
    def test_rate_at_swings_between_trough_and_peak(self):
        process = DiurnalProcess(rate_rps=0.2, peak_rate_rps=1.0, period_s=400.0)
        assert process.rate_at(0.0) == pytest.approx(0.6)  # midpoint
        assert process.rate_at(100.0) == pytest.approx(1.0)  # quarter in: peak
        assert process.rate_at(300.0) == pytest.approx(0.2)  # trough
        for t in range(0, 800, 7):
            assert 0.2 <= process.rate_at(float(t)) <= 1.0

    def test_validators(self):
        with pytest.raises(ConfigError):
            DiurnalProcess(rate_rps=0.0, peak_rate_rps=1.0, period_s=60.0)
        with pytest.raises(ConfigError):
            DiurnalProcess(rate_rps=1.0, peak_rate_rps=0.5, period_s=60.0)
        with pytest.raises(ConfigError):
            DiurnalProcess(rate_rps=0.2, peak_rate_rps=1.0, period_s=0.0)


class TestBursty:
    def test_faster_than_background_poisson(self):
        # Bursts inject extra arrivals, so the same count finishes sooner
        # than the pure background-rate process.
        bursty = BurstyProcess(
            rate_rps=0.05, burst_rate_rps=1.0, on_s=60.0, off_s=120.0
        )
        background = PoissonProcess(rate_rps=0.05)
        assert (
            bursty.times(KeyedRng(1), 60)[-1]
            < background.times(KeyedRng(1), 60)[-1]
        )

    def test_validators(self):
        with pytest.raises(ConfigError):
            BurstyProcess(rate_rps=0.0, burst_rate_rps=1.0, on_s=1.0, off_s=1.0)
        with pytest.raises(ConfigError):
            BurstyProcess(rate_rps=0.1, burst_rate_rps=0.0, on_s=1.0, off_s=1.0)
        with pytest.raises(ConfigError):
            BurstyProcess(rate_rps=0.1, burst_rate_rps=1.0, on_s=0.0, off_s=1.0)
        with pytest.raises(ConfigError):
            BurstyProcess(rate_rps=0.1, burst_rate_rps=1.0, on_s=1.0, off_s=0.0)


class TestRegistry:
    def test_lists_all_three(self):
        assert list_arrivals() == ["bursty", "diurnal", "poisson"]
        assert set(arrival_descriptions()) == set(list_arrivals())
        assert all(arrival_descriptions().values())

    def test_build_by_name(self):
        process = build_arrival("poisson", rate_rps=0.3)
        assert isinstance(process, PoissonProcess)
        assert process.rate_rps == 0.3

    def test_unknown_name_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'poisson'"):
            build_arrival("poison", rate_rps=0.3)

    def test_bad_parameters_wrapped(self):
        with pytest.raises(ConfigError, match="bad poisson arrival parameters"):
            build_arrival("poisson", rate=0.3)
