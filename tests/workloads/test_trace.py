"""Trace serialization: JSONL round-trips, validation, problem rebuild."""

import pytest

from repro.errors import ConfigError
from repro.workloads.datasets import build_dataset
from repro.workloads.trace import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    Trace,
    TraceRequest,
    materialize_problems,
)


def small_trace() -> Trace:
    return Trace(
        seed=11,
        requests=(
            TraceRequest(
                request_id="chat-0000", tenant="chat", arrival_s=1.5,
                dataset="amc23", dataset_seed=4, problem_index=0,
                deadline_s=120.0, ttft_slo_s=30.0,
            ),
            TraceRequest(
                request_id="batch-0000", tenant="batch", arrival_s=2.25,
                dataset="math500", dataset_seed=9, problem_index=3,
                algorithm="best_of_n", n=8, slo_class="batch",
            ),
        ),
    )


class TestTraceRequest:
    def test_validation(self):
        ok = small_trace().requests[0]
        with pytest.raises(ValueError):
            TraceRequest(**{**ok.to_json_dict(), "request_id": ""})
        with pytest.raises(ValueError):
            TraceRequest(**{**ok.to_json_dict(), "tenant": ""})
        with pytest.raises(ValueError):
            TraceRequest(**{**ok.to_json_dict(), "arrival_s": -0.1})
        with pytest.raises(ValueError):
            TraceRequest(**{**ok.to_json_dict(), "problem_index": -1})
        with pytest.raises(ValueError):
            TraceRequest(**{**ok.to_json_dict(), "n": 0})
        with pytest.raises(ValueError):
            TraceRequest(**{**ok.to_json_dict(), "deadline_s": 0.0})
        with pytest.raises(ValueError):
            TraceRequest(**{**ok.to_json_dict(), "ttft_slo_s": -2.0})

    def test_json_dict_round_trip(self):
        request = small_trace().requests[0]
        assert TraceRequest.from_json_dict(request.to_json_dict()) == request

    def test_unknown_field_rejected(self):
        payload = small_trace().requests[0].to_json_dict()
        payload["priority"] = 3
        with pytest.raises(ConfigError, match="unknown fields: priority"):
            TraceRequest.from_json_dict(payload)

    def test_bad_value_wrapped_as_config_error(self):
        payload = small_trace().requests[0].to_json_dict()
        payload["deadline_s"] = -1.0
        with pytest.raises(ConfigError, match="bad trace request"):
            TraceRequest.from_json_dict(payload)


class TestTraceValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace(seed=0, requests=())

    def test_unknown_base_dataset_rejected(self):
        with pytest.raises(ValueError):
            Trace(seed=0, requests=small_trace().requests, base_dataset="gsm8k")

    def test_unsorted_rejected(self):
        a, b = small_trace().requests
        with pytest.raises(ValueError, match="sorted by arrival"):
            Trace(seed=0, requests=(b, a))

    def test_duplicate_ids_rejected(self):
        a, _ = small_trace().requests
        with pytest.raises(ValueError, match="duplicate"):
            Trace(seed=0, requests=(a, a))

    def test_properties(self):
        trace = small_trace()
        assert len(trace) == 2
        assert trace.tenants == ("batch", "chat")
        assert trace.horizon_s == 2.25
        assert [r.request_id for r in trace] == ["chat-0000", "batch-0000"]


class TestJsonl:
    def test_round_trip_is_equal(self):
        trace = small_trace()
        assert Trace.from_jsonl(trace.to_jsonl()) == trace

    def test_serialized_form_is_stable(self):
        # Serializing the parsed trace again reproduces the bytes.
        text = small_trace().to_jsonl()
        assert Trace.from_jsonl(text).to_jsonl() == text

    def test_header_first_line(self):
        import json

        header = json.loads(small_trace().to_jsonl().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["version"] == TRACE_VERSION
        assert header["seed"] == 11

    def test_save_load(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        assert Trace.load(path) == trace

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read trace file"):
            Trace.load(tmp_path / "nope.jsonl")

    @pytest.mark.parametrize(
        "text, message",
        [
            ("", "no header"),
            ("not json\n", "header is not JSON"),
            ('{"schema": "other"}\n', "must set schema"),
            ('{"schema": "repro.trace", "version": 99}\n', "unsupported trace version"),
        ],
    )
    def test_bad_header(self, text, message):
        with pytest.raises(ConfigError, match=message):
            Trace.from_jsonl(text)

    def test_bad_body_line_numbered(self):
        text = small_trace().to_jsonl().splitlines()
        text.insert(2, "{broken")
        with pytest.raises(ConfigError, match="line 3 is not JSON"):
            Trace.from_jsonl("\n".join(text))

    def test_unsorted_body_wrapped(self):
        a, b = small_trace().requests
        lines = Trace(seed=0, requests=(a, b)).to_jsonl().splitlines()
        with pytest.raises(ConfigError, match="bad trace"):
            Trace.from_jsonl("\n".join([lines[0], lines[2], lines[1]]))


class TestMaterializeProblems:
    def test_matches_direct_dataset_build(self):
        trace = small_trace()
        problems = materialize_problems(trace)
        assert set(problems) == {"chat-0000", "batch-0000"}
        amc = list(build_dataset("amc23", seed=4, size=1))
        math500 = list(build_dataset("math500", seed=9, size=4))
        assert problems["chat-0000"] == amc[0]
        assert problems["batch-0000"] == math500[3]

    def test_one_pool_per_dataset_seed_pair(self):
        # Two requests into the same (dataset, seed) must address the same
        # pool, so equal indices yield equal problems.
        requests = tuple(
            TraceRequest(
                request_id=f"t-{k}", tenant="t", arrival_s=float(k),
                dataset="amc23", dataset_seed=7, problem_index=2,
            )
            for k in range(2)
        )
        problems = materialize_problems(Trace(seed=0, requests=requests))
        assert problems["t-0"] == problems["t-1"]
