"""Open-loop acceptance: replay identity, overload SLOs, late policies.

The two headline contracts from the issue:

* a trace serialized to JSONL and replayed produces byte-identical fleet
  records to running the in-memory trace directly;
* at ~2x the sustainable arrival rate, SLO attainment degrades while
  goodput-under-deadline stays within a bounded factor of the
  closed-loop optimum (the same fleet saturated with deadline-free
  work).
"""

import pytest

from repro.core.config import baseline_config
from repro.core.fleet import run_trace
from repro.errors import ConfigError
from repro.workloads.tenants import TenantSpec, generate_trace
from repro.workloads.trace import Trace


def config():
    return baseline_config(memory_fraction=0.4, seed=0)


def single_tenant_trace(rate: float, requests: int, seed: int = 1,
                        deadline: float = 30.0, ttft: float = 15.0) -> Trace:
    spec = TenantSpec.parse(
        f"t:arrival=poisson,rate={rate},n=1,deadline={deadline},"
        f"ttft={ttft},requests={requests}"
    )
    return generate_trace([spec], seed=seed)


@pytest.fixture(scope="module")
def closed_loop_optimum():
    """Service-limited completion and goodput rate of one saturated lane.

    A very high arrival rate with no deadlines keeps the lane always
    busy, so completed/makespan is the fleet's sustainable service rate
    and correct/makespan its goodput ceiling.
    """
    spec = TenantSpec.parse("t:arrival=poisson,rate=50,n=1,requests=40")
    report = run_trace(generate_trace([spec], seed=1), config())
    metrics = report.metrics
    correct = sum(1 for r in report.results.values() if r.top1_correct)
    return {
        "service_rate": metrics.completed / metrics.makespan_s,
        "goodput": correct / metrics.makespan_s,
    }


class TestReplayIdentity:
    def test_jsonl_round_trip_is_byte_identical(self, tmp_path):
        trace = generate_trace(
            [
                TenantSpec.parse("chat:rate=0.2,deadline=60,ttft=20,requests=5"),
                TenantSpec.parse("batch:arrival=bursty,rate=0.1,requests=5"),
            ],
            seed=4,
        )
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        replayed = Trace.load(path)
        assert replayed == trace

        direct = run_trace(trace, config(), late_policy="drop")
        from_disk = run_trace(replayed, config(), late_policy="drop")
        assert from_disk.records == direct.records
        assert from_disk.results == direct.results
        assert from_disk.table() == direct.table()
        assert from_disk.tenant_table() == direct.tenant_table()

    def test_rejects_bad_late_policy(self):
        trace = single_tenant_trace(rate=0.1, requests=2)
        with pytest.raises(ConfigError, match="late_policy"):
            run_trace(trace, config(), late_policy="reject")


class TestOverload:
    def test_slo_degrades_but_goodput_bounded(self, closed_loop_optimum):
        mu = closed_loop_optimum["service_rate"]

        under = run_trace(
            single_tenant_trace(rate=0.5 * mu, requests=40), config()
        ).slo_summary()
        over_late = run_trace(
            single_tenant_trace(rate=2.0 * mu, requests=40), config()
        ).slo_summary()
        over_drop = run_trace(
            single_tenant_trace(rate=2.0 * mu, requests=40), config(),
            late_policy="drop",
        ).slo_summary()

        # Under 2x overload, attainment collapses and the queue saturates.
        assert under.slo_attainment == 1.0
        assert over_late.slo_attainment < 0.6 < under.slo_attainment
        assert over_drop.dropped > 0
        assert over_late.overload_fraction > under.overload_fraction
        assert over_late.queue_depth_peak > under.queue_depth_peak

        # ... but goodput-under-deadline stays within a bounded factor of
        # the closed-loop optimum: shedding keeps the lane doing useful
        # in-deadline work instead of serving already-dead requests.
        optimum = closed_loop_optimum["goodput"]
        assert over_drop.goodput_ud_rps >= optimum / 3.0
        assert over_drop.goodput_ud_rps <= optimum * 1.05
        assert over_drop.goodput_ud_rps > over_late.goodput_ud_rps


class TestLatePolicies:
    def test_serve_late_completes_everything(self):
        report = run_trace(
            single_tenant_trace(rate=1.0, requests=8, deadline=10.0), config()
        )
        assert all(r.accepted and not r.dropped for r in report.records)
        assert len(report.results) == 8

    def test_drop_sheds_expired_requests_deterministically(self):
        trace = single_tenant_trace(rate=1.0, requests=8, deadline=10.0)
        report = run_trace(trace, config(), late_policy="drop")
        dropped = [r for r in report.records if r.dropped]
        assert dropped, "a 10s deadline at this rate must shed something"
        for record in dropped:
            assert not record.accepted
            assert record.finish_s == pytest.approx(
                record.arrival_s + record.deadline_s
            )
            assert "deadline expired" in record.reject_reason
        # Dropped requests never produce results; served ones all do.
        served = {r.request_id for r in report.records if r.accepted}
        assert set(report.results) == served
        # Identical reruns are byte-identical (pure function of the trace).
        again = run_trace(trace, config(), late_policy="drop")
        assert again.records == report.records

    def test_started_requests_always_finish(self):
        # drop only sheds requests still in the queue: anything with a
        # start time runs to completion even if it finishes past deadline.
        trace = single_tenant_trace(rate=1.0, requests=8, deadline=10.0)
        report = run_trace(trace, config(), late_policy="drop")
        for record in report.records:
            if record.accepted:
                assert record.finish_s is not None
                assert record.start_s is not None
