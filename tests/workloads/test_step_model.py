"""Property tests: StepLengthModel floor/cap, determinism, validators."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.utils.rng import KeyedRng
from repro.workloads.traces import StepLengthModel

models = st.builds(
    StepLengthModel,
    median_tokens=st.floats(min_value=1.0, max_value=2000.0),
    sigma=st.floats(min_value=0.0, max_value=3.0),
    min_tokens=st.integers(min_value=1, max_value=64),
    max_tokens=st.integers(min_value=64, max_value=4096),
)
keys = st.tuples(
    st.integers(min_value=0, max_value=10**9),
    st.text(min_size=0, max_size=8),
)


@settings(max_examples=200, deadline=None)
@given(model=models, seed=st.integers(min_value=0, max_value=2**32), key=keys)
def test_sample_within_floor_and_cap(model, seed, key):
    value = model.sample(KeyedRng(seed), *key)
    assert isinstance(value, int)
    assert model.min_tokens <= value <= model.max_tokens


@settings(max_examples=200, deadline=None)
@given(
    model=models,
    seed=st.integers(min_value=0, max_value=2**32),
    key=keys,
    cap=st.integers(min_value=1, max_value=8192),
)
def test_cap_override_respected(model, seed, key, cap):
    value = model.sample(KeyedRng(seed), *key, cap=cap)
    limit = min(cap, model.max_tokens)
    if limit < model.min_tokens:
        # A cap below the floor degrades to the cap itself (never < 1).
        assert value == max(1, limit)
    else:
        assert model.min_tokens <= value <= limit


@settings(max_examples=100, deadline=None)
@given(model=models, seed=st.integers(min_value=0, max_value=2**32), key=keys)
def test_deterministic_per_key(model, seed, key):
    first = model.sample(KeyedRng(seed), *key)
    # Unrelated draws in between must not perturb the keyed stream.
    rng = KeyedRng(seed)
    rng.uniform("unrelated")
    assert model.sample(rng, *key) == first


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_distinct_keys_decorrelate(seed):
    model = StepLengthModel(median_tokens=200.0, sigma=0.8)
    rng = KeyedRng(seed)
    values = {model.sample(rng, "step", i) for i in range(32)}
    assert len(values) > 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"median_tokens": 0.0, "sigma": 0.5},
        {"median_tokens": -10.0, "sigma": 0.5},
        {"median_tokens": 100.0, "sigma": -0.1},
        {"median_tokens": 100.0, "sigma": 0.5, "min_tokens": 0},
        {"median_tokens": 100.0, "sigma": 0.5, "min_tokens": 65, "max_tokens": 64},
    ],
)
def test_validators_reject(kwargs):
    with pytest.raises(ValueError):
        StepLengthModel(**kwargs)


def test_mean_tokens_above_median():
    model = StepLengthModel(median_tokens=150.0, sigma=0.9)
    assert model.mean_tokens > model.median_tokens
    assert StepLengthModel(median_tokens=150.0, sigma=0.0).mean_tokens == 150.0
