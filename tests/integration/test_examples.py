"""Smoke tests: every example script runs end-to-end.

Examples are documentation that compiles; if the public API drifts, these
fail before a user ever does. Scripts run in-process via runpy with a
patched argv (and small scales where supported).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(monkeypatch, capsys, name: str, argv: list[str] | None = None):
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py")
    assert "goodput gain" in out
    assert "best beam" in out


def test_math_reasoning_small(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "math_reasoning.py",
        ["--problems", "1", "--n", "8"],
    )
    assert "aime24" in out and "amc23" in out
    assert "gain" in out


def test_code_generation(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "code_generation.py")
    assert "HumanEval" in out
    assert "goodput gain" in out


def test_edge_deployment(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "edge_deployment.py")
    assert "rtx3070ti" in out
    assert "rtx4090" in out


def test_custom_search(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "custom_search.py")
    assert "identical beams under both systems: True" in out


@pytest.mark.slow
def test_run_all_experiments_driver(monkeypatch, capsys, tmp_path):
    """The artifact driver runs a fast subset and writes its outputs."""
    monkeypatch.setattr(sys, "argv", [
        "run_all_experiments.py", "--exp", "--figures", "fig6", "fig10",
        "--results-dir", str(tmp_path),
    ])
    root = Path(__file__).resolve().parents[2]
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_path(str(root / "run_all_experiments.py"), run_name="__main__")
    assert excinfo.value.code == 0
    assert (tmp_path / "index.json").exists()
    assert (tmp_path / "fig10.jsonl").exists()
