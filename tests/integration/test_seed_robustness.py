"""Seed robustness: the headline results are not one seed's luck."""

import pytest

from repro.experiments import ExperimentSpec, run_pair


@pytest.mark.parametrize("seed", [1, 2024])
def test_goodput_gain_across_seeds(seed):
    spec = ExperimentSpec(
        dataset_name="aime24", dataset_size=2, model_config="1.5B+1.5B",
        algorithm="beam_search", n=32, seed=seed,
    )
    pair = run_pair(spec)
    assert pair.goodput_gain > 1.1
    assert pair.latency_reduction > 0.1
    assert pair.verifier_latency_reduction > 0.4
    # equivalence holds at every seed
    assert pair.baseline.top1_accuracy == pair.fasttts.top1_accuracy


@pytest.mark.parametrize("seed", [7, 99])
def test_equivalence_across_seeds(seed):
    from repro.core.config import baseline_config, fasttts_config
    from repro.core.server import TTSServer
    from repro.search.registry import build_algorithm
    from repro.workloads.datasets import build_dataset

    dataset = build_dataset("amc23", seed=seed, size=1)
    problem = list(dataset)[0]
    algo = build_algorithm("dvts", 16)
    base = TTSServer(
        baseline_config(memory_fraction=0.4, seed=seed), dataset
    ).solve_detailed(problem, algo)
    fast = TTSServer(
        fasttts_config(memory_fraction=0.4, seed=seed), dataset
    ).solve_detailed(problem, algo)
    assert sorted((p.lineage, p.answer) for p in base.collected) == sorted(
        (p.lineage, p.answer) for p in fast.collected
    )
