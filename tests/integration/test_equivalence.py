"""Algorithmic-equivalence tests: the paper's central correctness claim.

FastTTS promises that its optimizations change *timing only*: the search
selects the same beams, collects the same answers, and assigns the same
scores as the naive baseline. Because every stochastic draw in this
reproduction is keyed, we can assert that exactly — against the baseline
server AND against a serving-free pure reference implementation.
"""

import pytest

from repro.core.config import OffloadMode, baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.experiments.reference import pure_search
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset

N = 16
SEED = 11


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("aime24", seed=SEED, size=2)


@pytest.fixture(scope="module")
def problem(dataset):
    return list(dataset)[0]


def collected_signature(paths):
    return sorted(
        (p.lineage, p.total_tokens, p.answer, p.answer_correct, tuple(p.scores))
        for p in paths
    )


ALGORITHMS = ["best_of_n", "beam_search", "dvts", "dynamic_branching",
              "varying_granularity"]


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_fasttts_matches_baseline(dataset, problem, algorithm_name):
    """Same collected beams: lineages, token counts, answers, scores."""
    algo = build_algorithm(algorithm_name, N)
    base = TTSServer(
        baseline_config(memory_fraction=0.4, seed=SEED), dataset
    ).solve_detailed(problem, algo)
    fast = TTSServer(
        fasttts_config(memory_fraction=0.4, seed=SEED), dataset
    ).solve_detailed(problem, algo)
    assert collected_signature(base.collected) == collected_signature(fast.collected)


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_servers_match_pure_reference(dataset, problem, algorithm_name):
    """The serving system implements exactly the abstract search loop."""
    algo = build_algorithm(algorithm_name, N)
    reference = pure_search(problem, dataset, algo, seed=SEED)
    served = TTSServer(
        fasttts_config(memory_fraction=0.4, seed=SEED), dataset
    ).solve_detailed(problem, build_algorithm(algorithm_name, N))
    ref_sig = sorted((p.lineage, p.total_tokens, p.answer) for p in reference.collected)
    srv_sig = sorted((p.lineage, p.total_tokens, p.answer) for p in served.collected)
    assert ref_sig == srv_sig


@pytest.mark.parametrize(
    "flags",
    [
        dict(prefix_caching=True),
        dict(prefix_caching=True, prefix_aware=True),
        dict(prefix_caching=True, prefix_aware=True, asymmetric_alloc=True),
        dict(prefix_caching=True, speculation=True),
        dict(prefix_caching=True, speculation=True, lookahead=True,
             spec_truncation_ratio=0.0),
        dict(prefix_caching=True, speculation=True, lookahead=True,
             spec_truncation_ratio=1.0),
        dict(offload=OffloadMode.FORCE),
    ],
)
def test_every_optimization_stage_is_equivalent(dataset, problem, flags):
    """Each ablation stage (Fig. 16) preserves the search exactly."""
    algo = build_algorithm("beam_search", N)
    base = TTSServer(
        baseline_config(memory_fraction=0.4, seed=SEED), dataset
    ).solve_detailed(problem, algo)
    staged = TTSServer(
        baseline_config(memory_fraction=0.4, seed=SEED, **flags), dataset
    ).solve_detailed(problem, algo)
    assert collected_signature(base.collected) == collected_signature(staged.collected)


def test_memory_pressure_does_not_change_results(dataset, problem):
    """Waves, evictions and preemptions are timing-only effects."""
    algo = build_algorithm("beam_search", 32)
    ample = TTSServer(
        fasttts_config(memory_fraction=0.9, seed=SEED), dataset
    ).solve_detailed(problem, algo)
    scarce = TTSServer(
        fasttts_config(memory_fraction=0.35, seed=SEED), dataset
    ).solve_detailed(problem, algo)
    assert collected_signature(ample.collected) == collected_signature(
        scarce.collected
    )


def test_device_does_not_change_results(dataset, problem):
    """Hardware changes simulated time, never search outcomes."""
    algo = build_algorithm("beam_search", N)
    on_4090 = TTSServer(
        fasttts_config(device_name="rtx4090", memory_fraction=0.4, seed=SEED),
        dataset,
    ).solve_detailed(problem, algo)
    on_4070 = TTSServer(
        fasttts_config(device_name="rtx4070ti", memory_fraction=0.8, seed=SEED),
        dataset,
    ).solve_detailed(problem, algo)
    assert collected_signature(on_4090.collected) == collected_signature(
        on_4070.collected
    )


def test_accuracy_identical_between_servers(dataset):
    """Fig. 14: Top-1 equality holds problem by problem."""
    algo = build_algorithm("beam_search", N)
    base_server = TTSServer(baseline_config(memory_fraction=0.4, seed=SEED), dataset)
    fast_server = TTSServer(fasttts_config(memory_fraction=0.4, seed=SEED), dataset)
    for problem in dataset:
        base = base_server.solve(problem, algo)
        fast = fast_server.solve(problem, algo)
        assert base.top1_correct == fast.top1_correct
