"""Tests for terminal plots."""

import pytest

from repro.utils.ascii_plot import bar_chart, series_plot


class TestBarChart:
    def test_peak_fills_width(self):
        out = bar_chart(["small", "big"], [1.0, 4.0], width=8)
        lines = out.splitlines()
        assert lines[1].count("#") == 8
        assert lines[0].count("#") == 2

    def test_values_shown(self):
        out = bar_chart(["x"], [1234.5], unit=" tok/s")
        assert "1,234.50 tok/s" in out

    def test_title(self):
        assert bar_chart(["x"], [1.0], title="T").startswith("T")

    def test_zero_values_safe(self):
        out = bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in out

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestSeriesPlot:
    def test_markers_present(self):
        out = series_plot({"up": [1, 2, 3, 4], "down": [4, 3, 2, 1]})
        assert "U" in out and "D" in out
        assert "U=up" in out and "D=down" in out

    def test_extremes_on_border_rows(self):
        out = series_plot({"line": [0.0, 10.0]}, height=5)
        lines = out.splitlines()
        assert "L" in lines[0]   # max row
        assert "L" in lines[4]   # min row

    def test_flat_series_safe(self):
        out = series_plot({"flat": [2.0, 2.0, 2.0]})
        assert "F" in out

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            series_plot({"a": [1, 2], "b": [1, 2, 3]})

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            series_plot({"a": [1.0]})

    def test_empty(self):
        with pytest.raises(ValueError):
            series_plot({})

    def test_height_validation(self):
        with pytest.raises(ValueError):
            series_plot({"a": [1, 2]}, height=1)
