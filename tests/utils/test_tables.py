"""Tests for ASCII table rendering."""

import pytest

from repro.utils.tables import format_bytes, format_quantity, render_table


class TestFormatQuantity:
    def test_plain(self):
        assert format_quantity(12.0) == "12.00"

    def test_kilo(self):
        assert format_quantity(1500.0) == "1.50K"

    def test_mega_with_unit(self):
        assert format_quantity(2_200_000, "tok/s") == "2.20Mtok/s"

    def test_negative(self):
        assert format_quantity(-1500.0) == "-1.50K"

    def test_nan(self):
        assert format_quantity(float("nan")) == "nan"


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512.00B"

    def test_gib(self):
        assert format_bytes(3 * 1024**3) == "3.00GiB"


class TestRenderTable:
    def test_round_trip(self):
        out = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        assert "name" in out and "bb" in out and "22" in out
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_numeric_right_aligned(self):
        out = render_table(["v"], [[1], [100]])
        row_one = [line for line in out.splitlines() if "| " in line][-2]
        assert row_one.endswith("  1 |")

    def test_float_formatting(self):
        out = render_table(["v"], [[1.23456]])
        assert "1.235" in out

    def test_integral_float_shown_as_int(self):
        out = render_table(["v"], [[4.0]])
        assert " 4 " in out

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_no_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
