"""Tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import geometric_mean, percentile, ratio, summarize

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_single_value(self):
        s = summarize([7.0])
        assert s.mean == s.p50 == s.p95 == s.minimum == s.maximum == 7.0
        assert s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_renders(self):
        assert "mean=" in str(summarize([1.0, 2.0]))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_bounds_ordering(self, values):
        s = summarize(values)
        tol = 1e-9 * max(1.0, abs(s.maximum), abs(s.minimum))
        assert s.minimum <= s.p50 + tol
        assert s.p50 <= s.p95 + tol
        assert s.p95 <= s.maximum + tol
        assert s.minimum - tol <= s.mean <= s.maximum + tol


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    def test_never_exceeds_arithmetic_mean(self, values):
        gm = geometric_mean(values)
        am = sum(values) / len(values)
        assert gm <= am * (1 + 1e-9)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestRatio:
    def test_normal(self):
        assert ratio(6.0, 3.0) == 2.0

    def test_zero_denominator(self):
        assert ratio(1.0, 0.0) == math.inf

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(ratio(0.0, 0.0))
