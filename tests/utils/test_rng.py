"""Tests for the keyed RNG streams — the schedule-invariance foundation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import KeyedRng, stable_hash64

key_parts = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.text(max_size=20),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("a", 1) == stable_hash64("a", 1)

    def test_distinct_keys_differ(self):
        assert stable_hash64("a", 1) != stable_hash64("a", 2)

    def test_type_tagging_int_vs_str(self):
        assert stable_hash64(1) != stable_hash64("1")

    def test_type_tagging_bool_vs_int(self):
        assert stable_hash64(True) != stable_hash64(1)

    def test_tuple_not_flattened(self):
        assert stable_hash64((1, 2), 3) != stable_hash64(1, (2, 3))
        assert stable_hash64((1, 2)) != stable_hash64(1, 2)

    def test_nested_tuples(self):
        assert stable_hash64(((1,), 2)) != stable_hash64((1, (2,)))

    def test_negative_ints(self):
        assert stable_hash64(-5) != stable_hash64(5)

    def test_bytes_supported(self):
        assert stable_hash64(b"ab") == stable_hash64(b"ab")
        assert stable_hash64(b"ab") != stable_hash64("ab")

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash64([1, 2])  # type: ignore[arg-type]

    @given(st.lists(key_parts, min_size=1, max_size=5))
    def test_hash_is_pure(self, parts):
        assert stable_hash64(*parts) == stable_hash64(*parts)

    @given(key_parts, key_parts)
    def test_distinct_single_parts_rarely_collide(self, a, b):
        if a != b or (isinstance(a, float) and np.isnan(a)):
            # not a strict guarantee, but collisions would break the design
            if type(a) is not type(b) or a != b:
                assert stable_hash64(a) != stable_hash64(b)


class TestKeyedRng:
    def test_same_key_same_draw(self):
        rng = KeyedRng(7)
        assert rng.uniform("x", 3) == rng.uniform("x", 3)

    def test_different_seed_different_draw(self):
        assert KeyedRng(1).uniform("x") != KeyedRng(2).uniform("x")

    def test_stream_reproducible_sequence(self):
        rng = KeyedRng(0)
        a = rng.stream("s").random(5)
        b = rng.stream("s").random(5)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        rng = KeyedRng(0)
        a = rng.stream("a").random(100)
        b = rng.stream("b").random(100)
        assert not np.array_equal(a, b)

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            KeyedRng("seed")  # type: ignore[arg-type]

    def test_normal_location(self):
        rng = KeyedRng(3)
        draws = [rng.normal("n", i, loc=10.0, scale=0.1) for i in range(200)]
        assert 9.9 < float(np.mean(draws)) < 10.1

    def test_lognormal_positive(self):
        rng = KeyedRng(3)
        assert rng.lognormal("l", mean=2.0, sigma=0.5) > 0

    def test_randint_bounds(self):
        rng = KeyedRng(5)
        for i in range(100):
            assert 3 <= rng.randint("r", i, low=3, high=9) < 9

    def test_choice_index_weights(self):
        rng = KeyedRng(1)
        picks = [rng.choice_index("c", i, weights=[0.0, 1.0, 0.0]) for i in range(20)]
        assert all(p == 1 for p in picks)

    def test_choice_index_empty_raises(self):
        with pytest.raises(ValueError):
            KeyedRng(0).choice_index("c", weights=[])

    def test_choice_index_negative_raises(self):
        with pytest.raises(ValueError):
            KeyedRng(0).choice_index("c", weights=[-1.0, 2.0])

    def test_choice_index_all_zero_uniform(self):
        rng = KeyedRng(9)
        picks = {rng.choice_index("z", i, weights=[0, 0, 0]) for i in range(60)}
        assert picks == {0, 1, 2}

    def test_fork_namespaces(self):
        rng = KeyedRng(0)
        child_a = rng.fork("a")
        child_b = rng.fork("b")
        assert child_a.uniform("k") != child_b.uniform("k")
        assert child_a.uniform("k") == rng.fork("a").uniform("k")

    @given(st.lists(key_parts, min_size=1, max_size=4), st.integers(0, 2**31))
    def test_draws_schedule_invariant(self, parts, seed):
        """Draw order can never influence values — the core property."""
        rng = KeyedRng(seed)
        first = rng.uniform(*parts)
        rng.uniform("unrelated", 1)
        rng.normal("other", loc=0, scale=2)
        assert rng.uniform(*parts) == first
