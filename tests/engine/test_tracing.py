"""Tests for structured serving traces."""

import json

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.engine.tracing import SolveTrace, TraceEvent
from repro.search.beam_search import BeamSearch
from repro.workloads.datasets import build_dataset


class TestSolveTrace:
    def test_record_and_query(self):
        trace = SolveTrace("p0")
        trace.record(0.0, "generation_round", 0, decoded_tokens=10)
        trace.record(1.0, "verification_round", 0, jobs=4)
        trace.record(2.0, "generation_round", 1, decoded_tokens=5)
        assert trace.rounds() == 2
        assert len(trace.of_kind("verification_round")) == 1

    def test_event_json(self):
        event = TraceEvent(time=1.234567891, kind="swap", round_idx=-1,
                           payload={"to": "verifier"})
        record = json.loads(event.to_json())
        assert record["kind"] == "swap"
        assert record["to"] == "verifier"
        assert record["time"] == pytest.approx(1.234568)

    def test_dump_jsonl(self, tmp_path):
        trace = SolveTrace("p0")
        trace.record(0.0, "selection", 0, kept=2)
        path = trace.dump(tmp_path / "trace.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2  # header + 1 event
        header = json.loads(lines[0])
        assert header["problem_id"] == "p0"
        assert header["events"] == 1


class TestServerTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        dataset = build_dataset("amc23", seed=3, size=1)
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        return server.solve_detailed(list(dataset)[0], BeamSearch(n=16), trace=True)

    def test_trace_attached(self, traced):
        assert traced.trace is not None
        assert traced.trace.rounds() >= 1

    def test_round_structure(self, traced):
        gen = traced.trace.of_kind("generation_round")
        ver = traced.trace.of_kind("verification_round")
        assert len(gen) == len(ver)  # beam search verifies every round
        for event in gen:
            assert event.payload["active_beams"] > 0
            assert event.payload["round_time"] >= 0

    def test_times_monotone(self, traced):
        times = [e.time for e in traced.trace.events]
        assert times == sorted(times)

    def test_lookahead_flows_into_cached_scores(self, traced):
        """Scores pre-computed at round r are consumed at round r+1."""
        ver = traced.trace.of_kind("verification_round")
        produced = sum(e.payload["lookahead_scores"] for e in ver)
        consumed = sum(e.payload["cached_scores"] for e in ver)
        assert produced > 0
        assert 0 < consumed <= produced

    def test_untraced_by_default(self):
        dataset = build_dataset("amc23", seed=3, size=1)
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        outcome = server.solve_detailed(list(dataset)[0], BeamSearch(n=8))
        assert outcome.trace is None

    def test_offload_swaps_traced(self):
        from repro.core.config import OffloadMode

        dataset = build_dataset("amc23", seed=3, size=1)
        server = TTSServer(
            fasttts_config(memory_fraction=0.4, offload=OffloadMode.FORCE), dataset
        )
        outcome = server.solve_detailed(
            list(dataset)[0], BeamSearch(n=8), trace=True
        )
        swaps = outcome.trace.of_kind("swap")
        assert swaps
        assert all(s.payload["seconds"] > 0 for s in swaps)
