"""Tests for the simulation clock and telemetry."""

import pytest

from repro.engine.clock import ClockBinding, SimClock
from repro.engine.telemetry import (
    Phase,
    PhaseTimer,
    TokenCounters,
    UtilizationTracker,
    UtilSpan,
)


class TestSimClock:
    def test_advances(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.reset()
        assert clock.now == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_to_sets_absolute_time(self):
        clock = SimClock()
        clock.advance_to(3.25)
        assert clock.now == 3.25
        clock.advance_to(3.25)  # idempotent at the same instant
        assert clock.now == 3.25

    def test_advance_to_rejects_rewind(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_to_clamps_float_jitter(self):
        clock = SimClock(start=1.0)
        assert clock.advance_to(1.0 - 1e-12) == 1.0


class TestClockBinding:
    def test_sync_maps_session_time_onto_fleet_time(self):
        fleet, session = SimClock(), SimClock()
        binding = ClockBinding(session)
        fleet.advance(10.0)
        binding.rebind(fleet)
        assert binding.anchor == 10.0
        session.advance(2.5)
        assert binding.sync(fleet) == 12.5

    def test_rebind_after_interleaving(self):
        fleet, session = SimClock(), SimClock()
        binding = ClockBinding(session)
        binding.rebind(fleet)
        session.advance(2.0)
        binding.sync(fleet)
        fleet.advance(5.0)  # another session ran for 5s
        binding.rebind(fleet)
        assert binding.anchor == 5.0  # fleet 7.0 minus 2.0 already served
        session.advance(1.0)
        assert binding.sync(fleet) == 8.0

    def test_rebind_onto_second_clock_after_migration(self):
        """Migration hands one session clock across two lane timelines."""
        lane_a, lane_b, session = SimClock(), SimClock(), SimClock()
        binding = ClockBinding(session)
        binding.rebind(lane_a)
        session.advance(3.0)
        binding.sync(lane_a)
        # destination lane had its own (later) history
        lane_b.advance(4.5)
        binding.rebind(lane_b)
        assert binding.anchor == 1.5  # lane_b 4.5 minus 3.0 already served
        session.advance(2.0)
        assert binding.sync(lane_b) == 6.5
        # the abandoned source lane is untouched by post-migration rounds
        assert lane_a.now == 3.0

    def test_anchor_handoff_roundtrip_has_no_drift(self):
        """Alternating across two shared clocks lands on exact floats."""
        lane_a, lane_b, session = SimClock(), SimClock(), SimClock()
        binding = ClockBinding(session)
        steps = [0.1, 0.2, 0.3, 0.4]
        for i, dt in enumerate(steps):
            lane = lane_a if i % 2 == 0 else lane_b
            binding.rebind(lane)
            session.advance(dt)
            binding.sync(lane)
        # each lane was pushed to anchor + session total at its turns:
        # the reconstruction is absolute, never an accumulation of deltas
        assert lane_b.now == binding.anchor + session.now
        assert session.now == pytest.approx(sum(steps))

    def test_sync_with_equal_timestamps_is_idempotent(self):
        """advance_to at the exact current instant must not move or raise."""
        fleet, session = SimClock(), SimClock()
        binding = ClockBinding(session)
        binding.rebind(fleet)
        session.advance(1.25)
        assert binding.sync(fleet) == 1.25
        # a second sync with no session progress targets the same float
        assert binding.sync(fleet) == 1.25
        assert fleet.now == 1.25

    def test_rebind_is_stable_when_clocks_already_agree(self):
        fleet, session = SimClock(), SimClock()
        binding = ClockBinding(session)
        binding.rebind(fleet)
        session.advance(2.0)
        binding.sync(fleet)
        anchor = binding.anchor
        # re-binding at the position sync just produced changes nothing
        binding.rebind(fleet)
        assert binding.anchor == anchor
        assert binding.sync(fleet) == fleet.now


class TestUtilSpan:
    def test_utilization(self):
        span = UtilSpan(0.0, 1.0, busy_slots=3, capacity_slots=4, phase=Phase.GENERATION)
        assert span.utilization == 0.75
        assert span.duration == 1.0

    def test_zero_capacity(self):
        span = UtilSpan(0.0, 1.0, busy_slots=0, capacity_slots=0, phase=Phase.GENERATION)
        assert span.utilization == 0.0


class TestUtilizationTracker:
    def test_mean_weighted_by_time(self):
        tracker = UtilizationTracker()
        tracker.record(UtilSpan(0, 1, 4, 4, Phase.GENERATION))
        tracker.record(UtilSpan(1, 4, 1, 4, Phase.GENERATION))
        # (1.0*1 + 0.25*3) / 4 = 0.4375
        assert tracker.mean_utilization(Phase.GENERATION) == pytest.approx(0.4375)

    def test_phase_filter(self):
        tracker = UtilizationTracker()
        tracker.record(UtilSpan(0, 1, 4, 4, Phase.GENERATION))
        tracker.record(UtilSpan(1, 2, 1, 4, Phase.VERIFICATION))
        assert tracker.mean_utilization(Phase.VERIFICATION) == 0.25

    def test_empty_is_zero(self):
        assert UtilizationTracker().mean_utilization() == 0.0

    def test_zero_duration_ignored(self):
        tracker = UtilizationTracker()
        tracker.record(UtilSpan(1, 1, 2, 4, Phase.GENERATION))
        assert tracker.spans == []

    def test_invalid_span_rejected(self):
        tracker = UtilizationTracker()
        with pytest.raises(ValueError):
            tracker.record(UtilSpan(1, 0, 1, 4, Phase.GENERATION))
        with pytest.raises(ValueError):
            tracker.record(UtilSpan(0, 1, 5, 4, Phase.GENERATION))

    def test_sample_trace(self):
        tracker = UtilizationTracker()
        tracker.record(UtilSpan(0, 1, 4, 4, Phase.GENERATION))
        tracker.record(UtilSpan(1, 2, 2, 4, Phase.GENERATION))
        grid, values = tracker.sample_trace(0.0, 2.0, 5)
        assert len(grid) == len(values) == 5
        assert values[0] == 1.0
        assert values[2] == 0.5  # t=1.0 falls in the second span


class TestPhaseTimer:
    def test_accumulates(self):
        timer = PhaseTimer()
        timer.add(Phase.GENERATION, 1.0)
        timer.add(Phase.GENERATION, 2.0)
        timer.add(Phase.SWAP, 0.5)
        assert timer.get(Phase.GENERATION) == 3.0
        assert timer.total == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PhaseTimer().add(Phase.SWAP, -1.0)


class TestTokenCounters:
    def test_speculation_efficiency(self):
        counters = TokenCounters(speculative_used=30, speculative_wasted=10)
        assert counters.speculation_efficiency == 0.75

    def test_efficiency_zero_when_no_speculation(self):
        assert TokenCounters().speculation_efficiency == 0.0

    def test_total_generated(self):
        counters = TokenCounters(committed=10, speculative_used=5, speculative_wasted=3)
        assert counters.total_generated == 18
