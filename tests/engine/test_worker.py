"""Tests for the model workers (decode spans, prefill batches, recompute)."""

import pytest

from repro.engine.clock import SimClock
from repro.engine.telemetry import Phase, PhaseTimer, UtilizationTracker
from repro.engine.worker import GeneratorWorker, VerifierWorker
from repro.hardware.device import get_device
from repro.hardware.roofline import Roofline
from repro.kvcache.cache import PagedKVCache
from repro.models.zoo import QWEN25_MATH_1P5B as MODEL


@pytest.fixture
def worker():
    clock = SimClock()
    cache = PagedKVCache(2**28, MODEL.kv_bytes_per_token)
    return GeneratorWorker(
        MODEL, Roofline(get_device("rtx4090")), cache, clock,
        PhaseTimer(), UtilizationTracker(),
    )


class TestDecodeSpan:
    def test_advances_clock(self, worker):
        dt = worker.decode_span(10, busy_slots=4, capacity_slots=8, avg_cache_len=100)
        assert dt > 0
        assert worker.clock.now == pytest.approx(dt)

    def test_more_steps_cost_more(self, worker):
        one = worker.decode_span(1, 4, 8, 100)
        ten = worker.decode_span(10, 4, 8, 100)
        assert ten == pytest.approx(10 * one)

    def test_memory_bound_batch_insensitivity(self, worker):
        """Per-step cost barely grows with batch size: the straggler story."""
        lone = worker.decode_span(1, 1, 8, 100)
        full = worker.decode_span(1, 8, 8, 100)
        assert full < 2 * lone

    def test_records_utilization(self, worker):
        worker.decode_span(5, 2, 8, 100)
        spans = worker._util.spans
        assert len(spans) == 1
        assert spans[0].busy_slots == 2
        assert spans[0].phase is Phase.GENERATION

    def test_validates_slots(self, worker):
        with pytest.raises(ValueError):
            worker.decode_span(1, 9, 8, 100)
        with pytest.raises(ValueError):
            worker.decode_span(0, 1, 8, 100)
        with pytest.raises(ValueError):
            worker.decode_span(1, 0, 8, 100)


class TestPrefillBatch:
    def test_empty_batch_is_free(self, worker):
        assert worker.prefill_batch([0, 0], [10, 10]) == 0.0

    def test_batches_share_weight_traffic(self, worker):
        single = worker.prefill_batch([100], [0])
        double_separate = 2 * single
        batched = worker.prefill_batch([100, 100], [0, 0])
        assert batched < double_separate

    def test_phase_tagging(self, worker):
        worker.prefill_batch([100], [0], phase=Phase.GENERATION)
        assert worker._timer.get(Phase.GENERATION) > 0
        assert worker._timer.get(Phase.VERIFICATION) == 0

    def test_mismatched_lengths_raise(self, worker):
        with pytest.raises(ValueError):
            worker.prefill_batch([100], [0, 0])


class TestMaterializePath:
    def test_recompute_charges_time(self, worker):
        cache = worker.cache
        cache.register_segment(1, None, 100)
        cache.register_segment(2, 1, 50)
        before = worker.clock.now
        outcome = worker.materialize_path(2, Phase.GENERATION)
        assert outcome.recomputed_tokens == 150
        assert worker.clock.now > before

    def test_hit_is_free(self, worker):
        cache = worker.cache
        cache.register_segment(1, None, 100)
        worker.materialize_path(1, Phase.GENERATION)
        worker.release_path(1)
        before = worker.clock.now
        outcome = worker.materialize_path(1, Phase.GENERATION)
        assert outcome.recomputed_tokens == 0
        assert worker.clock.now == before

    def test_verifier_worker_shares_mechanics(self):
        clock = SimClock()
        cache = PagedKVCache(2**28, MODEL.kv_bytes_per_token)
        verifier_model = MODEL  # mechanics only; role not enforced here
        worker = VerifierWorker(
            verifier_model, Roofline(get_device("rtx4090")), cache, clock,
            PhaseTimer(),
        )
        dt = worker.prefill_batch([64], [0])
        assert dt > 0 and clock.now == pytest.approx(dt)
