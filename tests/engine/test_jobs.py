"""Validation tests for job records."""

import pytest

from repro.engine.jobs import GenJob, SpecHeadStart, VerifyJob


def gen_job(**overrides):
    kwargs = dict(
        lineage=(0,),
        path_segments=(1,),
        path_segment_tokens=(64,),
        new_segment=2,
        step_tokens=10,
    )
    kwargs.update(overrides)
    return GenJob(**kwargs)


class TestGenJob:
    def test_remaining_tokens(self):
        assert gen_job(step_tokens=10, head_start=4).remaining_tokens == 6

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            gen_job(step_tokens=0)

    def test_head_start_bounds(self):
        with pytest.raises(ValueError):
            gen_job(head_start=11)
        with pytest.raises(ValueError):
            gen_job(head_start=-1)

    def test_segment_token_alignment(self):
        with pytest.raises(ValueError):
            gen_job(path_segment_tokens=(64, 10))

    def test_prompt_segment_required(self):
        with pytest.raises(ValueError):
            gen_job(path_segments=(), path_segment_tokens=())


class TestVerifyJob:
    def base(self, **overrides):
        kwargs = dict(
            lineage=(0,),
            step_idx=0,
            path_segments=(1,),
            path_segment_tokens=(64,),
            new_segment=2,
            new_tokens=10,
            mean_soundness=0.0,
        )
        kwargs.update(overrides)
        return VerifyJob(**kwargs)

    def test_valid(self):
        job = self.base()
        assert job.lookahead_child is None

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            self.base(new_tokens=-1)
        with pytest.raises(ValueError):
            self.base(lookahead_tokens=-1)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            self.base(path_segment_tokens=(64, 1))


class TestSpecHeadStart:
    def test_fields(self):
        head = SpecHeadStart(parent_lineage=(1,), child_index=2, tokens=30,
                             segment_id=99)
        assert head.parent_lineage == (1,)
        assert head.tokens == 30
