#!/usr/bin/env python3
"""Edge deployment across GPU tiers, including KV offloading on 8 GB.

Walks the paper's hardware ladder (RTX 4090 -> 4070 Ti -> 3070 Ti) with the
same workload. On the 8 GB 3070 Ti, two 1.5B models leave almost no KV
room, so the allocator's dual-strategy policy (Sec. 4.3.2) may choose to
offload the inactive model's KV to host memory; the swap cost then appears
in the latency breakdown.

Usage::

    python examples/edge_deployment.py
"""

from repro import BeamSearch, TTSServer, build_dataset, fasttts_config
from repro.utils.tables import render_table, format_bytes


def main() -> None:
    dataset = build_dataset("aime24", seed=0, size=1)
    problem = list(dataset)[0]
    algorithm = BeamSearch(n=16)

    tiers = [
        ("rtx4090", 0.40),   # paper's constrained setting on the 24 GB card
        ("rtx4070ti", 0.90),
        ("rtx3070ti", 0.95),
    ]
    rows = []
    for device, fraction in tiers:
        server = TTSServer(
            fasttts_config(device_name=device, memory_fraction=fraction), dataset
        )
        plan = server.plan_allocation(algorithm.n)
        result = server.solve(problem, algorithm)
        rows.append([
            device,
            format_bytes(server.kv_budget_bytes),
            "offload" if plan.offload else "split",
            format_bytes(plan.kv_dec_bytes),
            format_bytes(plan.kv_pre_bytes),
            round(result.goodput, 1),
            round(result.latency.total, 1),
            round(result.latency.swap, 2),
        ])

    print(render_table(
        ["device", "KV budget", "strategy", "generator KV", "verifier KV",
         "goodput tok/s", "latency s", "swap s"],
        rows,
        title="FastTTS across edge GPU tiers (AIME, 1.5B+1.5B, n=16)",
    ))
    print("\nThe allocator gives the bandwidth-hungry generator the larger KV")
    print("slice everywhere; on the smallest card the offloading strategy can")
    print("hand each model the full budget at the price of PCIe swaps.")


if __name__ == "__main__":
    main()
