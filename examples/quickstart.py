#!/usr/bin/env python3
"""Quickstart: serve one AIME problem with FastTTS vs the vLLM baseline.

Runs verifier-guided beam search (n=16 beams) for a single problem on a
simulated RTX 4090 under the paper's memory-constrained 1.5B+1.5B setting,
then prints the goodput/latency comparison and a peek at the best beam.

Usage::

    python examples/quickstart.py
"""

from repro import BeamSearch, TTSServer, baseline_config, build_dataset, fasttts_config
from repro.llm.tokenizer import SyntheticTokenizer
from repro.utils.rng import KeyedRng
from repro.utils.tables import render_table


def main() -> None:
    dataset = build_dataset("aime24", seed=0, size=1)
    problem = list(dataset)[0]
    algorithm = BeamSearch(n=16)

    print(f"problem: {problem.problem_id} (difficulty {problem.difficulty:.2f}, "
          f"answer {problem.answer})")

    baseline = TTSServer(baseline_config(memory_fraction=0.4), dataset)
    fasttts = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
    base_result = baseline.solve(problem, algorithm)
    fast_result = fasttts.solve(problem, algorithm)

    print()
    print(render_table(
        ["system", "goodput tok/s", "latency s", "generator s", "verifier s",
         "top-1 correct"],
        [
            ["vLLM baseline", round(base_result.goodput, 1),
             round(base_result.latency.total, 1),
             round(base_result.latency.generation, 1),
             round(base_result.latency.verification, 1),
             base_result.top1_correct],
            ["FastTTS", round(fast_result.goodput, 1),
             round(fast_result.latency.total, 1),
             round(fast_result.latency.generation, 1),
             round(fast_result.latency.verification, 1),
             fast_result.top1_correct],
        ],
        title="FastTTS vs baseline (AIME, 1.5B+1.5B, n=16, RTX 4090 @ 40% memory)",
    ))

    gain = fast_result.goodput / base_result.goodput
    saved = 1 - fast_result.latency.total / base_result.latency.total
    print(f"\ngoodput gain: {gain:.2f}x   latency saved: {saved:.0%}")
    print(f"speculative tokens adopted: {fast_result.tokens.speculative_used} "
          f"(efficiency {fast_result.tokens.speculation_efficiency:.0%})")

    best = max(fast_result.beams, key=lambda b: b.score)
    tokenizer = SyntheticTokenizer()
    rendered = tokenizer.render_step(
        KeyedRng(0), problem.problem_id, best.lineage, 0, best.tokens, preview=14
    )
    print(f"\nbest beam {best.lineage}: answer={best.answer} "
          f"(score {best.score:.2f}, {best.tokens} tokens)")
    print(f"  opening tokens: {rendered}")


if __name__ == "__main__":
    main()
