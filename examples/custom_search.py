#!/usr/bin/env python3
"""Extending FastTTS with a custom search algorithm.

The serving system accepts anything implementing
:class:`repro.search.SearchAlgorithm` — the abstract generation/verification
loop of the paper's Sec. 3.1. This example implements *epsilon-greedy beam
search*: mostly exploit the top-scored beams, but always reserve a slice of
the budget for a random surviving beam, hedging against verifier bias.

FastTTS's guarantees carry over automatically: run the same algorithm on
the baseline and FastTTS servers and the selected beams are identical.

Usage::

    python examples/custom_search.py
"""

from repro import TTSServer, baseline_config, build_dataset, fasttts_config
from repro.search import Expansion, SearchAlgorithm, SelectionDecision
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng
from repro.utils.tables import render_table


class EpsilonGreedyBeam(SearchAlgorithm):
    """Beam search that always keeps one non-top beam alive."""

    name = "epsilon_greedy_beam"

    def __init__(self, n: int, branching_factor: int = 4) -> None:
        super().__init__(n=n, branching_factor=branching_factor)

    def select(
        self,
        active: list[ReasoningPath],
        round_idx: int,
        rng: KeyedRng,
    ) -> SelectionDecision:
        if not active:
            return SelectionDecision(expansions=())
        ranked = self.ranked(active)
        keep = self.keep_count(len(active))
        survivors = ranked[:keep]
        losers = ranked[keep:]
        if losers:
            # Deterministic "random" pick via the keyed stream: exploration
            # that is still schedule-invariant.
            index = rng.randint("epsilon-pick", round_idx, low=0, high=len(losers))
            survivors = survivors[:-1] + [losers[index]] if keep > 1 else survivors
        per_beam = min(self.branching_factor, max(1, self.n // len(survivors)))
        return SelectionDecision(
            expansions=tuple(Expansion(path=p, n_children=per_beam) for p in survivors)
        )


def main() -> None:
    dataset = build_dataset("math500", seed=0, size=2)
    algorithm = EpsilonGreedyBeam(n=16)

    rows = []
    signatures = []
    for label, config in [
        ("baseline", baseline_config(memory_fraction=0.4)),
        ("fasttts", fasttts_config(memory_fraction=0.4)),
    ]:
        server = TTSServer(config, dataset)
        outcome = server.solve_detailed(list(dataset)[0], algorithm)
        result = outcome.result
        rows.append([
            label, round(result.goodput, 1), round(result.latency.total, 1),
            len(result.beams),
        ])
        signatures.append(sorted((b.lineage, b.answer) for b in result.beams))

    print(render_table(
        ["system", "goodput tok/s", "latency s", "beams collected"],
        rows,
        title="Custom epsilon-greedy beam search on both serving systems",
    ))
    print(f"\nidentical beams under both systems: {signatures[0] == signatures[1]}")


if __name__ == "__main__":
    main()
