#!/usr/bin/env python3
"""Math reasoning at scale: sweep the beam budget on AIME and AMC.

Reproduces the paper's headline trend in miniature: FastTTS's goodput gain
over the baseline grows with the number of beams n, and accuracy grows
with n for both systems identically (algorithmic equivalence).

Usage::

    python examples/math_reasoning.py [--problems 3] [--n 8 32 128]
"""

import argparse

from repro.experiments import ExperimentSpec, sweep_n
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--problems", type=int, default=2,
                        help="problems per dataset (default 2)")
    parser.add_argument("--n", type=int, nargs="+", default=[8, 32, 128],
                        help="beam budgets to sweep")
    args = parser.parse_args()

    rows = []
    for dataset_name in ("aime24", "amc23"):
        spec = ExperimentSpec(
            dataset_name=dataset_name,
            dataset_size=args.problems,
            model_config="1.5B+1.5B",
            algorithm="beam_search",
        )
        for pair in sweep_n(spec, args.n):
            rows.append([
                dataset_name,
                pair.spec.n,
                round(pair.baseline.goodput, 1),
                round(pair.fasttts.goodput, 1),
                round(pair.goodput_gain, 2),
                round(pair.latency_reduction * 100, 0),
                round(pair.fasttts.top1_accuracy, 2),
            ])
    print(render_table(
        ["dataset", "n", "baseline tok/s", "fasttts tok/s", "gain x",
         "latency saved %", "top-1 acc"],
        rows,
        title="Beam-budget sweep (1.5B generator + 1.5B PRM, RTX 4090 @ 40%)",
    ))
    print("\nNote: accuracy columns are identical for both systems by design —")
    print("FastTTS optimizations are algorithmically equivalent to the baseline.")


if __name__ == "__main__":
    main()
