#!/usr/bin/env python3
"""Code generation with TTS: the HumanEval workload (paper Sec. 6.4).

Code-generation reasoning steps are shorter and more uniform than math
steps, but the verifier-guided search pattern — and therefore FastTTS's
optimizations — transfer. This example also shows a non-default search
variant (Varying Granularity) whose per-step token budget starts fine and
widens as trajectories commit.

Usage::

    python examples/code_generation.py
"""

from repro import TTSServer, VaryingGranularity, baseline_config, build_dataset, fasttts_config
from repro.metrics import RunMetrics
from repro.utils.tables import render_table


def main() -> None:
    dataset = build_dataset("humaneval", seed=0, size=3)
    algorithm = VaryingGranularity(n=16, fine_cap=64, coarse_cap=512, fine_rounds=2)

    rows = []
    for label, config in [
        ("vLLM baseline", baseline_config(memory_fraction=0.4)),
        ("FastTTS", fasttts_config(memory_fraction=0.4)),
    ]:
        server = TTSServer(config, dataset)
        metrics = RunMetrics.aggregate(server.run(list(dataset), algorithm))
        rows.append([
            label,
            round(metrics.goodput, 1),
            round(metrics.latency.total, 1),
            round(metrics.top1_accuracy, 2),
            round(metrics.pass_at.get(4, 0.0), 2),
        ])

    print(render_table(
        ["system", "goodput tok/s", "latency s", "top-1 acc", "pass@4"],
        rows,
        title="HumanEval via Varying-Granularity search (RTX 4090)",
    ))
    gain = rows[1][1] / rows[0][1]
    print(f"\ngoodput gain on code generation: {gain:.2f}x "
          "(paper reports 1.3x-1.8x on HumanEval)")


if __name__ == "__main__":
    main()
