#!/usr/bin/env python3
"""Reproduce the paper's evaluation, end to end.

The counterpart of the artifact's ``run_all_experiments.py`` (Appendix B.5):
runs every figure experiment, prints the paper's rows as text tables, and
writes JSONL logs plus tables under ``benchmarks/benchmark_results/``.

Usage::

    python run_all_experiments.py --exp              # run everything
    python run_all_experiments.py --exp --jobs 4     # shard cells over 4 procs
    python run_all_experiments.py --exp --figures fig12 fig13
    python run_all_experiments.py --exp --scale full # paper-scale sweep
    python run_all_experiments.py --list

``--scale bench`` (default) uses small problem counts and n grids so the
whole sweep finishes in minutes on a laptop; ``--scale full`` approaches
the paper's grid (hours).

Every experiment cell runs through the parallel orchestrator
(:mod:`repro.experiments.parallel`): ``--jobs N`` shards independent cells
over N worker processes, and completed cells are memoized in an on-disk
result cache (default ``benchmarks/benchmark_results/cache/``; override
with ``--cache-dir`` or ``$REPRO_CACHE_DIR``, disable with ``--no-cache``).
Because all randomness is hash-keyed, a ``--jobs 4`` run is byte-identical
to a sequential one, and a second invocation replays entirely from cache.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figures as F
from repro.experiments.export import DEFAULT_RESULTS_DIR, ResultsWriter, export_figure
from repro.experiments.parallel import (
    ParallelOrchestrator,
    ResultCache,
    use_orchestrator,
)

# Each entry: figure id -> (callable, bench kwargs, full kwargs, extra outputs)
EXPERIMENTS: dict[str, dict] = {
    "fig1b": dict(
        fn=F.fig1b_frontier,
        bench=dict(n_values=(8, 32), problems=2),
        full=dict(n_values=(8, 32, 128, 512), problems=10),
    ),
    "fig3_left": dict(
        fn=F.fig3_tts_methods,
        bench=dict(n=16, problems=8),
        full=dict(n=64, problems=60),
    ),
    "fig3_right": dict(
        fn=F.fig3_step_lengths,
        bench=dict(n_paths=64, max_steps=10),
        full=dict(n_paths=256, max_steps=10),
    ),
    "fig4": dict(
        fn=F.fig4_phase_utilization,
        bench=dict(n=32),
        full=dict(n=128),
        rows_key=None,
    ),
    "fig5": dict(
        fn=F.fig5_prefix_sharing,
        bench=dict(n=64),
        full=dict(n=256),
    ),
    "fig6": dict(
        fn=F.fig6_kv_throughput,
        bench=dict(),
        full=dict(),
        rows_key=None,
    ),
    "fig10": dict(
        fn=F.fig10_allocation_sweep,
        bench=dict(n=128),
        full=dict(n=512),
    ),
    "fig11": dict(
        fn=F.fig11_search_variants,
        bench=dict(n_values=(8, 32), problems=2),
        full=dict(n_values=(8, 32, 128, 512), problems=10),
    ),
    "fig12": dict(
        fn=F.fig12_goodput_grid,
        bench=dict(n_values=(8, 64), problems=2),
        full=dict(n_values=(8, 32, 128, 512), problems=10),
    ),
    "fig13": dict(
        fn=F.fig13_latency_grid,
        bench=dict(n_values=(8, 64), problems=2),
        full=dict(n_values=(8, 32, 128, 512), problems=10),
    ),
    "fig14": dict(
        fn=F.fig14_accuracy,
        bench=dict(n=32, problems=6),
        full=dict(n=512, problems=30),
        rows_key="rows_top1",
        export_name="fig14_top1",
    ),
    "fig15": dict(
        fn=F.fig15_generality,
        bench=dict(n_values=(8, 32), problems=2),
        full=dict(n_values=(8, 32, 128, 256), problems=10),
    ),
    "fig16": dict(
        fn=F.fig16_ablation,
        bench=dict(n=32, problems=2),
        full=dict(n=128, problems=10),
    ),
    "fig17": dict(
        fn=F.fig17_speculation,
        bench=dict(n=32, problems=2),
        full=dict(n=128, problems=10),
    ),
    "fig18": dict(
        fn=F.fig18_prefix_memory,
        bench=dict(n=64),
        full=dict(n=256),
    ),
}


def _render_plots(figure_id: str, output: dict) -> None:
    """Terminal renderings of series figures (the artifact's PDFs)."""
    from repro.utils.ascii_plot import series_plot

    try:
        if figure_id == "fig5":
            beam = output["series"]["beam_search"]
            print(series_plot(
                {"cached": beam["with_cache"], "no-cache": beam["without_cache"]},
                title="fig5: beams in memory per iteration",
                x_label="iteration",
            ))
        elif figure_id == "fig6":
            print(series_plot(
                {"prefill": output["prefill_norm"], "decode": output["decode_norm"]},
                title="fig6: normalized throughput vs KV size (log-spaced)",
                x_label="kv budget",
            ))
    except (KeyError, ValueError):
        pass  # plots are best-effort garnish on top of the tables


def run(
    figure_ids: list[str],
    scale: str,
    results_dir: str,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> int:
    writer = ResultsWriter(results_dir)
    index: dict[str, dict] = {}
    failures = 0
    with ParallelOrchestrator(jobs=jobs, cache=cache) as orchestrator:
        with use_orchestrator(orchestrator):
            failures = _run_figures(figure_ids, scale, writer, index)
    writer.write_index(index)
    if cache is not None:
        print(
            f"\nresult cache: {cache.hits} hits, {cache.misses} misses "
            f"under {cache.directory}/"
        )
    print(f"results written under {writer.directory}/")
    return failures


def _run_figures(
    figure_ids: list[str],
    scale: str,
    writer: ResultsWriter,
    index: dict[str, dict],
) -> int:
    failures = 0
    for figure_id in figure_ids:
        entry = EXPERIMENTS[figure_id]
        kwargs = entry["full"] if scale == "full" else entry["bench"]
        print(f"\n=== {figure_id} {kwargs}")
        start = time.time()
        try:
            output = entry["fn"](**kwargs)
        except Exception as error:  # keep the sweep alive
            print(f"FAILED: {error}")
            failures += 1
            index[figure_id] = {"status": "failed", "error": str(error)}
            continue
        elapsed = time.time() - start
        for key in ("table", "table_pass", "gain_table"):
            if output.get(key):
                print(output[key])
        _render_plots(figure_id, output)
        rows_key = entry.get("rows_key", "rows")
        produced = {}
        if rows_key:
            produced = export_figure(
                entry.get("export_name", figure_id), output, writer,
                rows_key=rows_key,
            )
        index[figure_id] = {
            "status": "ok",
            "elapsed_s": round(elapsed, 2),
            "scale": scale,
            **produced,
        }
        print(f"[{figure_id} done in {elapsed:.1f}s]")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--exp", action="store_true", help="run the experiments")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--figures", nargs="+", default=None,
                        help="subset of figure ids (default: all)")
    parser.add_argument("--scale", choices=("bench", "full"), default="bench")
    parser.add_argument("--results-dir", default=str(DEFAULT_RESULTS_DIR))
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes to shard experiment cells across")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: "
                             "benchmarks/benchmark_results/cache or "
                             "$REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run every cell even if a cached result exists")
    args = parser.parse_args()

    if args.list:
        print("\n".join(EXPERIMENTS))
        return 0
    if not args.exp:
        parser.print_help()
        return 0
    figure_ids = args.figures or list(EXPERIMENTS)
    unknown = [f for f in figure_ids if f not in EXPERIMENTS]
    if unknown:
        print(f"unknown figures: {unknown}; use --list")
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return run(figure_ids, args.scale, args.results_dir, jobs=args.jobs, cache=cache)


if __name__ == "__main__":
    sys.exit(main())
