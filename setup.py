"""Setup shim for environments without PEP 660 editable-install support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FastTTS: Accelerating Test-Time Scaling for Edge LLM Reasoning "
        "(ASPLOS 2026) - full-system reproduction"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.26"],
    extras_require={
        "dev": ["pytest>=8", "pytest-benchmark>=4", "hypothesis>=6", "scipy>=1.11", "networkx>=3"],
    },
)
