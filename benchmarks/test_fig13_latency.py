"""Fig. 13 — completion latency and its generator/verifier breakdown.

Paper shape: FastTTS reduces end-to-end latency by 38-68% on average;
verifier latency falls 75-85% (LookAhead Verification + retention) and
generator latency 36-66% (speculation + allocation + scheduling).
"""

import numpy as np

from repro.experiments import fig13_latency_grid


def test_fig13_latency_grid(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig13_latency_grid(n_values=(8, 64), problems=2),
        rounds=1, iterations=1,
    )
    show(out["table"])
    verifier_reductions = []
    for pair in out["pairs"]:
        assert pair.latency_reduction > 0.0
        verifier_reductions.append(pair.verifier_latency_reduction)
    assert out["mean_latency_reduction"] > 0.25
    assert float(np.mean(verifier_reductions)) > 0.5
    benchmark.extra_info["mean_latency_reduction"] = out["mean_latency_reduction"]
    benchmark.extra_info["mean_verifier_reduction"] = float(
        np.mean(verifier_reductions)
    )
