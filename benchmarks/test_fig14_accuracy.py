"""Fig. 14 — algorithm accuracy: Top-1 and Pass@N.

Paper shape: FastTTS matches the baseline's accuracy (algorithmic
equivalence); AMC accuracy far exceeds AIME; the 7B-generator config is the
strongest. In this reproduction equivalence is exact, so baseline and
FastTTS columns are identical rather than merely "competitive".
"""

from repro.experiments import fig14_accuracy


def test_fig14_accuracy(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig14_accuracy(n=32, problems=6),
        rounds=1, iterations=1,
    )
    show(out["table"], out["table_pass"])
    amc_acc, aime_acc = [], []
    for (config, dataset_name), pair in out["outcomes"].items():
        # exact equivalence: speculation/scheduling never change accuracy
        assert pair.baseline.top1_accuracy == pair.fasttts.top1_accuracy
        for k, rate in pair.baseline.pass_at.items():
            assert pair.fasttts.pass_at[k] == rate
        (amc_acc if dataset_name == "amc23" else aime_acc).append(
            pair.baseline.top1_accuracy
        )
    assert max(amc_acc) > max(aime_acc)  # AMC is the easier benchmark
    # pass@N is monotone in N for every cell
    for pair in out["outcomes"].values():
        ks = sorted(pair.baseline.pass_at)
        rates = [pair.baseline.pass_at[k] for k in ks]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
    benchmark.extra_info["rows_top1"] = out["rows_top1"]
