"""Fig. 3 — the motivation study.

Left: accuracy climbs from Best-of-N to Beam Search to DVTS on MATH-500
while latency climbs too (the accuracy-latency gap FastTTS attacks).
Right: per-step token counts on AIME are wildly irregular — the max
dwarfs the average at every step index (the straggler source).
"""

from repro.experiments import fig3_step_lengths, fig3_tts_methods


def test_fig3_left_methods(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig3_tts_methods(n=16, problems=12),
        rounds=1, iterations=1,
    )
    show(out["table"])
    metrics = out["metrics"]
    # Verifier guidance buys accuracy over Best-of-N...
    assert metrics["beam_search"].top1_accuracy >= metrics["best_of_n"].top1_accuracy
    assert metrics["dvts"].top1_accuracy >= metrics["best_of_n"].top1_accuracy
    # ...at a latency premium over plain parallel sampling.
    assert metrics["beam_search"].latency.total > metrics["best_of_n"].latency.total
    benchmark.extra_info["rows"] = out["rows"]


def test_fig3_right_step_lengths(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig3_step_lengths(n_paths=64, max_steps=10),
        rounds=1, iterations=1,
    )
    show(out["table"])
    # The avg-vs-max disparity persists across all steps (paper: extreme).
    for avg, mx in zip(out["avg"], out["max"]):
        assert mx > 1.5 * avg
    assert max(out["max"]) > 3 * max(out["avg"])
    benchmark.extra_info["rows"] = out["rows"]
