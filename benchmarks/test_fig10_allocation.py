"""Fig. 10 — Roofline-Guided KV Allocation across memory budgets.

Paper shape: the optimal decode batch size grows with available KV memory
and normalized throughput saturates; the verifier's prefill batch stays
comparatively small because prefill saturates early (Fig. 6).
"""

from repro.experiments import fig10_allocation_sweep


def test_fig10_allocation_sweep(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig10_allocation_sweep(n=128),
        rounds=1, iterations=1,
    )
    show(out["table"])
    rows = out["rows"]
    b_decs = [row[2] for row in rows]
    throughputs = [row[3] for row in rows]
    assert b_decs == sorted(b_decs)              # decode batch grows
    assert throughputs[-1] == max(throughputs)   # throughput saturates
    # decode consistently gets the larger share of memory
    for plan in out["plans"]:
        assert plan.kv_dec_bytes > plan.kv_pre_bytes
    benchmark.extra_info["rows"] = rows
