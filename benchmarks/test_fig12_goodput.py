"""Fig. 12 — the main result: FastTTS goodput improvement.

Paper shape: consistent goodput gains over the vLLM baseline across all
three model configurations (1.5B+1.5B, 1.5B+7B, 7B+1.5B) and both datasets
(AIME, AMC), averaging 2.2x over the full n sweep and growing with n.
"""

from repro.experiments import fig12_goodput_grid


def test_fig12_goodput_grid(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig12_goodput_grid(n_values=(8, 64), problems=2),
        rounds=1, iterations=1,
    )
    show(out["table"])
    for pair in out["pairs"]:
        assert pair.goodput_gain > 1.0, (
            f"{pair.spec.model_config}/{pair.spec.dataset_name}/n={pair.spec.n}"
        )
    assert out["mean_gain"] > 1.3
    assert out["max_gain"] > 1.6
    # gains grow with the search budget n within every config x dataset cell
    by_cell = {}
    for pair in out["pairs"]:
        key = (pair.spec.model_config, pair.spec.dataset_name)
        by_cell.setdefault(key, []).append((pair.spec.n, pair.goodput_gain))
    grows = sum(
        1 for gains in by_cell.values()
        if sorted(gains)[-1][1] >= sorted(gains)[0][1]
    )
    assert grows >= len(by_cell) * 0.5
    benchmark.extra_info["mean_gain"] = out["mean_gain"]
    benchmark.extra_info["max_gain"] = out["max_gain"]
