"""Fig. 5 — the dynamic prefix-sharing opportunity.

Left: without prefix caching the number of beams resident in memory grows
linearly with iterations (every path stores private copies); with sharing
it grows far slower. Right (summarized): naive scheduling does not place
similar beams together.
"""

from repro.core.prefix_sched import lineage_order, random_order
from repro.experiments import fig5_prefix_sharing
from repro.experiments.figures import _tree_from_trace
from repro.experiments.reference import pure_search
from repro.search.registry import build_algorithm
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset


def test_fig5_left_beams_in_memory(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig5_prefix_sharing(n=64),
        rounds=1, iterations=1,
    )
    show(out["table"])
    for name in ("beam_search", "dvts"):
        series = out["series"][name]
        # Private copies dwarf the shared tree by the final iteration.
        assert series["without_cache"][-1] > 2 * series["with_cache"][-1]
    benchmark.extra_info["rows"] = out["rows"]


def test_fig5_right_naive_scheduling_scatters(benchmark):
    """Adjacent beams share far less prefix under a shuffled order."""

    def measure():
        dataset = build_dataset("aime24", seed=0, size=1)
        problem = list(dataset)[0]
        trace = pure_search(problem, dataset, build_algorithm("beam_search", 64))
        tree, leaves = _tree_from_trace(problem, trace, len(trace.rounds) - 1)
        naive = random_order(leaves, KeyedRng(0))
        grouped = lineage_order(leaves, lambda leaf: tuple(tree.path(leaf)))

        def adjacent(order):
            return sum(
                tree.shared_prefix_nodes(order[i], order[i + 1])
                for i in range(len(order) - 1)
            )

        return adjacent(naive), adjacent(grouped)

    naive_sharing, grouped_sharing = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(f"\nadjacent prefix sharing: naive={naive_sharing} grouped={grouped_sharing}")
    assert grouped_sharing > 1.5 * naive_sharing
