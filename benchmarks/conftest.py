"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures at a
bench-friendly scale, prints the same rows/series the paper reports, and
asserts the figure's qualitative shape. Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the rendered tables; EXPERIMENTS.md records the expected shapes.)

Set ``REPRO_BENCH_CACHE=1`` to route every experiment cell through the
parallel orchestrator's on-disk result cache (default location
``benchmarks/benchmark_results/cache/``, override via ``REPRO_CACHE_DIR``):
a second benchmark run then skips completed cells. Off by default so the
timing numbers stay honest.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _result_cache():
    """Opt-in orchestrated caching for the whole benchmark session."""
    if os.environ.get("REPRO_BENCH_CACHE") != "1":
        yield None
        return
    from repro.experiments.parallel import (
        ParallelOrchestrator,
        ResultCache,
        use_orchestrator,
    )

    cache = ResultCache()
    with ParallelOrchestrator(jobs=1, cache=cache) as orchestrator:
        with use_orchestrator(orchestrator):
            yield cache


@pytest.fixture
def show():
    """Print a rendered table so it lands in the benchmark log."""

    def _show(*tables: str) -> None:
        for table in tables:
            print("\n" + table)

    return _show
