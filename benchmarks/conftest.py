"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures at a
bench-friendly scale, prints the same rows/series the paper reports, and
asserts the figure's qualitative shape. Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the rendered tables; EXPERIMENTS.md records the expected shapes.)
"""

import pytest


@pytest.fixture
def show():
    """Print a rendered table so it lands in the benchmark log."""

    def _show(*tables: str) -> None:
        for table in tables:
            print("\n" + table)

    return _show
