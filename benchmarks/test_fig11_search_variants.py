"""Fig. 11 — goodput across search-algorithm variants.

Paper shape: FastTTS improves precise goodput over the vLLM baseline for
every variant (Beam Search, DVTS, Dynamic Branching, Varying Granularity),
with gains between 1.2x and 3.9x.
"""

from repro.experiments import fig11_search_variants


def test_fig11_search_variants(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig11_search_variants(n_values=(8, 32), problems=2),
        rounds=1, iterations=1,
    )
    show(out["table"])
    gains = []
    for variant, pairs in out["results"].items():
        for pair in pairs:
            assert pair.goodput_gain > 1.0, f"{variant} n={pair.spec.n} regressed"
            gains.append(pair.goodput_gain)
    assert max(gains) > 1.2
    benchmark.extra_info["gains"] = {
        variant: [round(p.goodput_gain, 2) for p in pairs]
        for variant, pairs in out["results"].items()
    }
