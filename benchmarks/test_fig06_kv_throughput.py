"""Fig. 6 — throughput sensitivity to KV cache size, per stage.

Paper shape: the verifier's prefill reaches 80% of peak throughput with
under 1 GB of KV cache; the generator's decoding needs 5-10x more — the
asymmetry that motivates Asymmetric Multi-Model Memory Allocation.
"""

from repro.experiments import fig6_kv_throughput


def test_fig6_kv_throughput(benchmark, show):
    out = benchmark.pedantic(fig6_kv_throughput, rounds=1, iterations=1)
    show(out["table"])
    assert out["prefill_80_gb"] < 1.0
    assert out["decode_80_gb"] > 3 * out["prefill_80_gb"]
    # both normalized curves are monotone non-decreasing in memory
    for series in ("prefill_norm", "decode_norm"):
        values = out[series]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    benchmark.extra_info["prefill_80_gb"] = out["prefill_80_gb"]
    benchmark.extra_info["decode_80_gb"] = out["decode_80_gb"]
