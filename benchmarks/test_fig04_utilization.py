"""Fig. 4 — GPU occupancy by phase under the baseline.

Paper shape: generation-phase utilization peaks early then decays as beams
finish and the straggler runs alone; verification (uniform prefill) stays
consistently high.
"""

from repro.experiments import fig4_phase_utilization


def test_fig4_phase_utilization(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig4_phase_utilization(n=32),
        rounds=1, iterations=1,
    )
    show(out["table"])
    assert out["verification_util"] > 0.8
    assert out["generation_util"] < out["verification_util"]
    assert out["generation_decay"] < 0.5  # decays toward the lone straggler
    benchmark.extra_info["generation_util"] = out["generation_util"]
    benchmark.extra_info["verification_util"] = out["verification_util"]
