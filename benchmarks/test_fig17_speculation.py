"""Fig. 17 — Speculative Beam Extension in depth.

Paper shape (left): the baseline's generation-phase occupancy decays as
beams finish; FastTTS keeps it high by filling freed slots speculatively.
Paper shape (right): an aggressive truncation ratio (R=0.85) retains more
speculative work and yields more goodput than discarding it (R=0).
"""

from repro.experiments import fig17_speculation


def test_fig17_speculation(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig17_speculation(n=32, problems=2, ratios=(0.0, 0.85)),
        rounds=1, iterations=1,
    )
    show(out["table"])
    assert out["fasttts_generation_util"] > out["baseline_generation_util"] + 0.1
    for dataset_name in ("aime24", "amc23"):
        assert (
            out["goodputs"][(dataset_name, 0.85)]
            >= out["goodputs"][(dataset_name, 0.0)]
        )
    benchmark.extra_info["baseline_util"] = out["baseline_generation_util"]
    benchmark.extra_info["fasttts_util"] = out["fasttts_generation_util"]
