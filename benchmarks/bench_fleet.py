"""Fleet serving throughput benchmark.

Measures how fast the *simulator itself* runs — distinct from the
simulated serving metrics the fleet reports. Each scenario drains a
small open-arrival workload and records:

- ``sim_seconds_per_wall_second``: simulated makespan divided by the
  wall-clock time the drain took (higher = cheaper simulation),
- ``sessions_per_sec``: accepted requests drained per wall second,
- ``peak_rss_mib``: process high-water resident set size,

plus the headline serving metrics (throughput, mean latency, mean
TTFT, batch occupancy) so regressions in either dimension show up in
the same artifact. Results land in ``BENCH_fleet.json`` at the repo
root.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --requests 8 --out -
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals, run_trace
from repro.routing import parse_lane_list
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset
from repro.workloads.tenants import TenantSpec, generate_trace

REPO_ROOT = Path(__file__).resolve().parent.parent

SCENARIOS = [
    # name, config factory, scheduler, kv_sharing, batching, beam width
    ("fifo_off", baseline_config, "fifo", "off", "off", 4),
    ("fifo_continuous", baseline_config, "fifo", "off", "continuous", 4),
    ("rr_sharing_continuous", fasttts_config, "round_robin", "prefix",
     "continuous", 4),
]


def peak_rss_mib() -> float:
    """Process high-water RSS in MiB (ru_maxrss is KiB on Linux)."""
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # reported in bytes there
        rss_kib /= 1024
    return round(rss_kib / 1024, 1)


def run_scenario(name, config_factory, scheduler, kv_sharing, batching,
                 width, requests, rate):
    dataset = build_dataset("amc23", seed=0, size=requests)
    fleet = TTSFleet(
        config_factory(memory_fraction=0.4, seed=0), dataset,
        scheduler=scheduler, kv_sharing=kv_sharing, batching=batching,
    )
    arrivals = generate_arrivals(requests, rate, seed=0)
    fleet.submit_stream(
        list(dataset), build_algorithm("beam_search", width), arrivals
    )
    wall_start = time.perf_counter()
    report = fleet.drain()
    wall_s = time.perf_counter() - wall_start
    m = report.metrics
    return {
        "scenario": name,
        "scheduler": scheduler,
        "kv_sharing": kv_sharing,
        "batching": batching,
        "requests": requests,
        "wall_s": round(wall_s, 3),
        "sim_makespan_s": round(m.makespan_s, 3),
        "sim_seconds_per_wall_second": (
            round(m.makespan_s / wall_s, 1) if wall_s > 0 else None
        ),
        "sessions_per_sec": (
            round(m.completed / wall_s, 2) if wall_s > 0 else None
        ),
        "peak_rss_mib": peak_rss_mib(),
        "serving": {
            "throughput_rps": round(m.throughput_rps, 4),
            "latency_mean_s": round(m.latency_mean_s, 2),
            "ttft_mean_s": round(m.ttft_mean_s, 2),
            "tpot_s": round(m.tpot_mean_s, 5),
            "batch_occupancy_mean": round(m.batch_occupancy_mean, 2),
        },
    }


def run_openloop_scenario(requests, late_policy):
    """Open-loop overload: a 1k+-request trace arriving ~4x faster than
    one lane can serve it, so queues build and deadlines expire. Tracks
    the same simulator-cost axes as the closed-loop scenarios plus the
    SLO headline numbers."""
    per_tenant = requests // 2
    tenants = [
        TenantSpec.parse(
            f"chat:arrival=poisson,rate=0.3,n=1,deadline=60,ttft=30,"
            f"requests={per_tenant}"
        ),
        TenantSpec.parse(
            f"batch:arrival=bursty,rate=0.15,n=1,deadline=240,"
            f"requests={requests - per_tenant}"
        ),
    ]
    trace = generate_trace(tenants, seed=0, base_dataset="amc23")
    wall_start = time.perf_counter()
    report = run_trace(
        trace, baseline_config(memory_fraction=0.4, seed=0),
        late_policy=late_policy,
    )
    wall_s = time.perf_counter() - wall_start
    m = report.metrics
    slo = report.slo_summary()
    return {
        "scenario": f"openloop_{late_policy}",
        "scheduler": "fifo",
        "late_policy": late_policy,
        "requests": requests,
        "wall_s": round(wall_s, 3),
        "sim_makespan_s": round(m.makespan_s, 3),
        "sim_seconds_per_wall_second": (
            round(m.makespan_s / wall_s, 1) if wall_s > 0 else None
        ),
        "sessions_per_sec": (
            round(m.completed / wall_s, 2) if wall_s > 0 else None
        ),
        "peak_rss_mib": peak_rss_mib(),
        "slo": {
            "completed": slo.completed,
            "dropped": slo.dropped,
            "slo_attainment": (
                round(slo.slo_attainment, 4)
                if slo.slo_attainment is not None else None
            ),
            "goodput_under_deadline_rps": round(slo.goodput_ud_rps, 4),
            "queue_depth_peak": slo.queue_depth_peak,
            "overload_fraction": round(slo.overload_fraction, 4),
        },
    }


def run_fault_scenario(requests, recovery="failover"):
    """Open-loop lane-crash overload: the same 1k-request trace on a
    four-lane pool with one lane crashing mid-trace (120 s MTTR) and a
    second permanent crash late in the run. Tracks availability, losses,
    and MTTR alongside the simulator-cost axes, so the recovery path's
    overhead and its serving outcome regress in the same artifact."""
    per_tenant = requests // 2
    tenants = [
        TenantSpec.parse(
            f"chat:arrival=poisson,rate=0.3,n=1,deadline=60,ttft=30,"
            f"requests={per_tenant}"
        ),
        TenantSpec.parse(
            f"batch:arrival=bursty,rate=0.15,n=1,deadline=240,"
            f"requests={requests - per_tenant}"
        ),
    ]
    trace = generate_trace(tenants, seed=0, base_dataset="amc23")
    spec = "crash:at=300,lane=0,mttr=120;crash:at=900,lane=2"
    wall_start = time.perf_counter()
    report = run_trace(
        trace, baseline_config(memory_fraction=0.4, seed=0),
        devices=["rtx4090"] * 4, scheduler="round_robin",
        placement="least_loaded",
        faults=spec, recovery=recovery,
    )
    wall_s = time.perf_counter() - wall_start
    m = report.metrics
    slo = report.slo_summary()
    return {
        "scenario": f"openloop_lane_crash_{recovery}",
        "scheduler": "round_robin",
        "devices": 4,
        "faults": spec,
        "recovery": recovery,
        "requests": requests,
        "wall_s": round(wall_s, 3),
        "sim_makespan_s": round(m.makespan_s, 3),
        "sim_seconds_per_wall_second": (
            round(m.makespan_s / wall_s, 1) if wall_s > 0 else None
        ),
        "sessions_per_sec": (
            round(m.completed / wall_s, 2) if wall_s > 0 else None
        ),
        "peak_rss_mib": peak_rss_mib(),
        "availability": {
            "availability": round(m.availability, 4),
            "requests_lost": m.requests_lost,
            "lane_failures": m.lane_failures,
            "mttr_s": round(m.mttr_s, 2) if m.mttr_s is not None else None,
            "retries_total": m.retries_total,
            "redone_work_s": round(m.redone_work_s, 2),
            "failed_over": m.failed_over,
        },
        "slo": {
            "completed": slo.completed,
            "dropped": slo.dropped,
            "slo_attainment": (
                round(slo.slo_attainment, 4)
                if slo.slo_attainment is not None else None
            ),
            "goodput_under_deadline_rps": round(slo.goodput_ud_rps, 4),
            "queue_depth_peak": slo.queue_depth_peak,
            "overload_fraction": round(slo.overload_fraction, 4),
        },
    }


def run_hetero_scenario(requests):
    """Mixed-difficulty accuracy-vs-cost frontier at 1k-request scale: the
    same closed-loop workload served by an all-big homogeneous pool (two
    7B lanes) and by a routed heterogeneous pool (one 7B lane + one int8
    1.5B lane under the cascade router). At this arrival rate the all-big
    pool saturates, so the routed pool trades a few accuracy points for a
    several-fold mean-latency win (the within-a-point criterion on an
    unsaturated workload is asserted in ``tests/routing/``); both
    frontier points and the escalation bill land in the artifact so
    either axis regressing shows up."""
    pools = (
        ("all_big", "7B+1.5B@rtx4090,7B+1.5B@rtx4090", "off"),
        ("routed", "7B+1.5B@rtx4090,1.5B+1.5B@rtx4090:int8", "cascade"),
    )
    points = {}
    wall_total = 0.0
    for label, lane_spec, router in pools:
        dataset = build_dataset("amc23", seed=0, size=requests)
        fleet = TTSFleet(
            baseline_config(memory_fraction=0.9, seed=0), dataset,
            lanes=parse_lane_list(lane_spec), router=router,
            placement="least_loaded",
        )
        arrivals = generate_arrivals(requests, 0.05, seed=0)
        fleet.submit_stream(
            list(dataset), build_algorithm("beam_search", 4), arrivals
        )
        wall_start = time.perf_counter()
        report = fleet.drain()
        wall_total += time.perf_counter() - wall_start
        point = report.frontier_point(label)
        m = report.metrics
        points[label] = {
            "lanes": lane_spec,
            "router": router,
            "accuracy": round(point.accuracy, 4),
            "latency_mean_s": round(point.latency_mean_s, 2),
            "device_time_mean_s": round(point.device_time_mean_s, 2),
            "escalations": m.escalations,
            "escalated_work_s": round(m.escalated_work_s, 2),
        }
    return {
        "scenario": "hetero_routed_vs_all_big",
        "requests": requests,
        "wall_s": round(wall_total, 3),
        "peak_rss_mib": peak_rss_mib(),
        "frontier": points,
    }


def run_affinity_scenario():
    """Sharing-aware placement × replica racing on a two-lane sharing
    pool: the same repeat-heavy workload served with racing plus
    ``prefix_affinity`` placement, racing alone (default ``first_fit``
    placement), and affinity alone (fifo). The combined arm should hold
    the lowest p95 sojourn — the synergy asserted in
    ``tests/core/test_kv_sharing.py`` — so either half of the mechanism
    regressing shows up as an arm reordering in the artifact."""
    from repro.core.scheduler import FirstFinishScheduler

    picks = [5, 5, 1, 1, 1, 1]
    arms = (
        ("racing_plus_affinity",
         lambda: FirstFinishScheduler(replicas=2, verify_threshold=0.95),
         "prefix_affinity"),
        ("racing_alone",
         lambda: FirstFinishScheduler(replicas=2, verify_threshold=0.95),
         "first_fit"),
        ("affinity_alone", lambda: "fifo", "prefix_affinity"),
    )
    points = {}
    wall_total = 0.0
    for label, scheduler_factory, placement in arms:
        dataset = build_dataset("amc23", seed=0, size=8)
        fleet = TTSFleet(
            fasttts_config(memory_fraction=0.4, seed=0), dataset,
            scheduler=scheduler_factory(),
            devices=["rtx4090", "rtx4090"], placement=placement,
            kv_sharing="prefix",
        )
        problems = list(dataset)
        for i, pick in enumerate(picks):
            fleet.submit(
                problems[pick], build_algorithm("beam_search", 8), i * 6.5
            )
        wall_start = time.perf_counter()
        report = fleet.drain()
        wall_total += time.perf_counter() - wall_start
        m = report.metrics
        points[label] = {
            "placement": placement,
            "latency_p95_s": round(m.latency_p95_s, 2),
            "latency_mean_s": round(m.latency_mean_s, 2),
            "affinity_hit_ratio": round(m.affinity_hit_ratio, 3),
            "kv_planned_admitted_mb": round(
                m.kv_planned_admitted_bytes / 1024**2, 1
            ),
            "kv_unique_admitted_mb": round(
                m.kv_unique_admitted_bytes / 1024**2, 1
            ),
        }
    return {
        "scenario": "racing_affinity_synergy",
        "requests": len(picks),
        "wall_s": round(wall_total, 3),
        "peak_rss_mib": peak_rss_mib(),
        "arms": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=5,
                        help="open-arrival requests per scenario")
    parser.add_argument("--rate", type=float, default=1.0,
                        help="mean arrival rate (req/s, simulated)")
    parser.add_argument("--openloop-requests", type=int, default=1000,
                        help="trace size for the open-loop overload scenarios")
    parser.add_argument("--hetero-requests", type=int, default=1000,
                        help="request count for the routed-vs-all-big "
                             "hetero-pool frontier scenario")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_fleet.json"),
                        help="output path, or '-' for stdout")
    args = parser.parse_args(argv)

    results = []
    for name, factory, scheduler, sharing, batching, width in SCENARIOS:
        result = run_scenario(name, factory, scheduler, sharing, batching,
                              width, args.requests, args.rate)
        results.append(result)
        print(
            f"{name:24s} wall={result['wall_s']:7.3f}s "
            f"sim/wall={result['sim_seconds_per_wall_second']}x "
            f"sessions/s={result['sessions_per_sec']} "
            f"rss={result['peak_rss_mib']}MiB",
            file=sys.stderr,
        )
    for late_policy in ("serve_late", "drop"):
        result = run_openloop_scenario(args.openloop_requests, late_policy)
        results.append(result)
        print(
            f"{result['scenario']:24s} wall={result['wall_s']:7.3f}s "
            f"sim/wall={result['sim_seconds_per_wall_second']}x "
            f"sessions/s={result['sessions_per_sec']} "
            f"rss={result['peak_rss_mib']}MiB "
            f"slo={result['slo']['slo_attainment']}",
            file=sys.stderr,
        )
    result = run_fault_scenario(args.openloop_requests)
    results.append(result)
    print(
        f"{result['scenario']:24s} wall={result['wall_s']:7.3f}s "
        f"sim/wall={result['sim_seconds_per_wall_second']}x "
        f"sessions/s={result['sessions_per_sec']} "
        f"rss={result['peak_rss_mib']}MiB "
        f"avail={result['availability']['availability']}",
        file=sys.stderr,
    )
    result = run_hetero_scenario(args.hetero_requests)
    results.append(result)
    routed = result["frontier"]["routed"]
    big = result["frontier"]["all_big"]
    print(
        f"{result['scenario']:24s} wall={result['wall_s']:7.3f}s "
        f"routed={routed['accuracy']}@{routed['latency_mean_s']}s "
        f"all_big={big['accuracy']}@{big['latency_mean_s']}s "
        f"escalations={routed['escalations']}",
        file=sys.stderr,
    )
    result = run_affinity_scenario()
    results.append(result)
    arms = result["arms"]
    print(
        f"{result['scenario']:24s} wall={result['wall_s']:7.3f}s "
        f"combined_p95={arms['racing_plus_affinity']['latency_p95_s']}s "
        f"racing_p95={arms['racing_alone']['latency_p95_s']}s "
        f"affinity_p95={arms['affinity_alone']['latency_p95_s']}s",
        file=sys.stderr,
    )

    payload = {
        "benchmark": "bench_fleet",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    text = json.dumps(payload, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
