"""Fleet serving throughput benchmark.

Measures how fast the *simulator itself* runs — distinct from the
simulated serving metrics the fleet reports. Each scenario drains a
small open-arrival workload and records:

- ``sim_seconds_per_wall_second``: simulated makespan divided by the
  wall-clock time the drain took (higher = cheaper simulation),
- ``sessions_per_sec``: accepted requests drained per wall second,
- ``peak_rss_mib``: process high-water resident set size,

plus the headline serving metrics (throughput, mean latency, mean
TTFT, batch occupancy) so regressions in either dimension show up in
the same artifact. Results land in ``BENCH_fleet.json`` at the repo
root.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --requests 8 --out -
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset

REPO_ROOT = Path(__file__).resolve().parent.parent

SCENARIOS = [
    # name, config factory, scheduler, kv_sharing, batching, beam width
    ("fifo_off", baseline_config, "fifo", "off", "off", 4),
    ("fifo_continuous", baseline_config, "fifo", "off", "continuous", 4),
    ("rr_sharing_continuous", fasttts_config, "round_robin", "prefix",
     "continuous", 4),
]


def peak_rss_mib() -> float:
    """Process high-water RSS in MiB (ru_maxrss is KiB on Linux)."""
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # reported in bytes there
        rss_kib /= 1024
    return round(rss_kib / 1024, 1)


def run_scenario(name, config_factory, scheduler, kv_sharing, batching,
                 width, requests, rate):
    dataset = build_dataset("amc23", seed=0, size=requests)
    fleet = TTSFleet(
        config_factory(memory_fraction=0.4, seed=0), dataset,
        scheduler=scheduler, kv_sharing=kv_sharing, batching=batching,
    )
    arrivals = generate_arrivals(requests, rate, seed=0)
    fleet.submit_stream(
        list(dataset), build_algorithm("beam_search", width), arrivals
    )
    wall_start = time.perf_counter()
    report = fleet.drain()
    wall_s = time.perf_counter() - wall_start
    m = report.metrics
    return {
        "scenario": name,
        "scheduler": scheduler,
        "kv_sharing": kv_sharing,
        "batching": batching,
        "requests": requests,
        "wall_s": round(wall_s, 3),
        "sim_makespan_s": round(m.makespan_s, 3),
        "sim_seconds_per_wall_second": (
            round(m.makespan_s / wall_s, 1) if wall_s > 0 else None
        ),
        "sessions_per_sec": (
            round(m.completed / wall_s, 2) if wall_s > 0 else None
        ),
        "peak_rss_mib": peak_rss_mib(),
        "serving": {
            "throughput_rps": round(m.throughput_rps, 4),
            "latency_mean_s": round(m.latency_mean_s, 2),
            "ttft_mean_s": round(m.ttft_mean_s, 2),
            "tpot_s": round(m.tpot_mean_s, 5),
            "batch_occupancy_mean": round(m.batch_occupancy_mean, 2),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=5,
                        help="open-arrival requests per scenario")
    parser.add_argument("--rate", type=float, default=1.0,
                        help="mean arrival rate (req/s, simulated)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_fleet.json"),
                        help="output path, or '-' for stdout")
    args = parser.parse_args(argv)

    results = []
    for name, factory, scheduler, sharing, batching, width in SCENARIOS:
        result = run_scenario(name, factory, scheduler, sharing, batching,
                              width, args.requests, args.rate)
        results.append(result)
        print(
            f"{name:24s} wall={result['wall_s']:7.3f}s "
            f"sim/wall={result['sim_seconds_per_wall_second']}x "
            f"sessions/s={result['sessions_per_sec']} "
            f"rss={result['peak_rss_mib']}MiB",
            file=sys.stderr,
        )

    payload = {
        "benchmark": "bench_fleet",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    text = json.dumps(payload, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
