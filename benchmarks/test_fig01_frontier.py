"""Fig. 1b — the latency/accuracy frontier on the memory-constrained edge.

Paper shape: matching cloud accuracy with a naive vLLM TTS stack costs
~200 s per request; FastTTS reaches the same accuracy at a fraction of that
latency, pulling edge TTS under the cloud's first-answer latency.
"""

from repro.experiments import CLOUD_REFERENCES, fig1b_frontier


def test_fig1b_frontier(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig1b_frontier(n_values=(8, 32), problems=2),
        rounds=1, iterations=1,
    )
    show(out["table"])
    for pair in out["pairs"]:
        # FastTTS strictly dominates the baseline at equal accuracy.
        assert pair.fasttts.latency.total < pair.baseline.latency.total
        assert pair.fasttts.top1_accuracy == pair.baseline.top1_accuracy
    benchmark.extra_info["cloud_reference_latency_s"] = CLOUD_REFERENCES[
        "cloud_latency_s"
    ]
    benchmark.extra_info["rows"] = out["rows"]
