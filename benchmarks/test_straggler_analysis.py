"""Straggler analysis: the analytical model vs the simulated engine.

DESIGN.md's straggler claim — idle batch slots are pure waste because
decode is memory-bound — has an analytical counterpart: with capped
lognormal step lengths, the expected idle slot-time fraction of a k-beam
batch is ``1 - E[L] / E[max_k L]``. This bench checks that the serving
simulator's measured generation-phase occupancy is consistent with the
order-statistics prediction, tying Fig. 4 to first principles.
"""

from repro.analysis.straggler import idle_fraction
from repro.engine.telemetry import Phase
from repro.experiments import ExperimentSpec
from repro.core.server import TTSServer
from repro.metrics.utilization import mean_phase_utilization
from repro.search.registry import build_algorithm
from repro.utils.tables import render_table
from repro.workloads.datasets import DATASET_PROFILES


def test_straggler_model_vs_simulation(benchmark, show):
    def measure():
        step_model = DATASET_PROFILES["aime24"].step_model
        rows = []
        for n in (8, 32):
            predicted_busy = 1.0 - idle_fraction(step_model, n)
            spec = ExperimentSpec(
                dataset_name="aime24", dataset_size=2, model_config="1.5B+1.5B",
                n=n, seed=0,
            )
            dataset = spec.build_dataset()
            server = TTSServer(spec.build_config(fast=False), dataset)
            results = server.run(list(dataset), build_algorithm("beam_search", n))
            spans = [s for r in results for s in r.util_spans]
            simulated_busy = mean_phase_utilization(spans, Phase.GENERATION)
            rows.append([n, round(predicted_busy, 3), round(simulated_busy, 3)])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(render_table(
        ["batch n", "predicted busy fraction", "simulated busy fraction"],
        rows,
        title="Straggler order-statistics vs serving simulation",
    ))
    for n, predicted, simulated in rows:
        # The simulation includes effects the closed form ignores (waves,
        # head-of-line prefill, early-terminating beams), so require
        # agreement in band, not equality.
        assert abs(predicted - simulated) < 0.25
        assert simulated < 0.75  # far from full occupancy: the paper's point
    # idleness grows with batch width in both views
    assert rows[0][1] > rows[1][1]
    assert rows[0][2] > rows[1][2]
