"""Fig. 18 — prefix-aware scheduling effectiveness and memory dependence.

Paper shape (left): under a constrained KV budget, prefix-aware order
evicts far less than random or worst-case order; with ample capacity all
orders converge to the compulsory cost.
Paper shape (right): P and M+P gains are largest under scarce memory
(58%/145% at 1.5 GB in the paper) and fade when memory is ample.
"""

from repro.experiments import fig18_prefix_memory


def test_fig18_prefix_memory(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig18_prefix_memory(n=64, capacities=(16, 32, 128)),
        rounds=1, iterations=1,
    )
    show(out["table"], out["gain_table"])
    costs = out["costs"]
    # tight capacity: ordering matters, prefix-aware dominates
    assert costs["prefix_aware"][16] < costs["random"][16]
    assert costs["prefix_aware"][16] < costs["worst_case"][16]
    # ample capacity: only compulsory misses remain for any order
    assert costs["prefix_aware"][128] == costs["random"][128]
    # the practical lineage grouping tracks the greedy schedule
    assert costs["lineage_grouped"][16] <= costs["random"][16]
    # gains fade when memory is ample
    scarce = next(r for r in out["gain_rows"] if r[0] == "scarce")
    ample = next(r for r in out["gain_rows"] if r[0] == "ample")
    assert scarce[2] > ample[2]  # M+P gain larger under pressure
    benchmark.extra_info["rows"] = out["rows"]
    benchmark.extra_info["gain_rows"] = out["gain_rows"]
