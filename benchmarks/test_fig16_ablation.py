"""Fig. 16 — cumulative goodput-gain breakdown of the three optimizations.

Paper shape: Dynamic Prefix-Aware Scheduling (P) provides a foundational
gain; Asymmetric Memory Allocation (M) adds on top (most at large n);
Speculative Beam Extension (S) provides a further, often largest, layer.
The full stack dominates every partial stack.
"""

from repro.experiments import fig16_ablation


def test_fig16_ablation(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig16_ablation(n=32, problems=2),
        rounds=1, iterations=1,
    )
    show(out["table"])
    speculation_added = 0
    for config, gains in out["results"].items():
        assert gains["P"] > 0.0, f"P regressed on {config}"
        assert gains["S+M+P"] > 0.0
        # the full stack never loses meaningfully to a partial stack
        assert gains["S+M+P"] >= max(gains["P"], gains["M+P"]) - 0.03
        if gains["S+M+P"] > gains["M+P"] + 0.02:
            speculation_added += 1
    # speculation provides a clear extra layer on most configs
    assert speculation_added >= 2
    benchmark.extra_info["rows"] = out["rows"]
