"""Fig. 15 — generality: constrained GPUs and code generation.

Paper shape: goodput speedups of 1.4-1.6x on RTX 3070 Ti (8 GB, with
offloading) and RTX 4070 Ti (12 GB), and 1.3-1.8x on HumanEval — the
execution patterns FastTTS optimizes transfer beyond math on a 4090.
"""

from repro.experiments import fig15_generality


def test_fig15_generality(benchmark, show):
    out = benchmark.pedantic(
        lambda: fig15_generality(n_values=(8, 32), problems=2),
        rounds=1, iterations=1,
    )
    show(out["table"])
    for (device, dataset_name), pairs in out["pairs"].items():
        for pair in pairs:
            assert pair.goodput_gain > 1.0, f"{device}/{dataset_name}"
    # absolute goodput on the 8 GB card trails the 12 GB card (offloading
    # and tighter memory), mirroring the paper's note on the 3070 Ti
    goodput_3070 = max(
        p.fasttts.goodput for p in out["pairs"][("rtx3070ti", "aime24")]
    )
    goodput_4070 = max(
        p.fasttts.goodput for p in out["pairs"][("rtx4070ti", "aime24")]
    )
    assert goodput_3070 <= goodput_4070 * 1.2
    benchmark.extra_info["rows"] = out["rows"]
