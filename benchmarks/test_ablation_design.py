"""Design-choice ablations beyond the paper's figures.

DESIGN.md calls out two substrate-level design decisions worth ablating:

* **Speculation bandwidth cap** — speculative slots ride along with the
  straggler's weight reads but add their own KV traffic. An uncapped
  policy can slow the straggler it is hiding at large n; the default cap
  (25% of weight bytes) should be at least as good as both extremes.
* **Quantization orthogonality** — the paper claims FastTTS composes with
  quantization (Sec. 6.4). int8 deployment should speed up both systems
  while preserving FastTTS's relative gain and the search results.
"""

from repro.experiments import ExperimentSpec, run_metrics, run_pair


def test_speculation_bandwidth_cap(benchmark, show):
    """The default cap avoids the uncapped policy's large-n regression."""

    def sweep():
        spec = ExperimentSpec(
            dataset_name="aime24", dataset_size=2, model_config="1.5B+1.5B",
            n=64, seed=0,
        )
        dataset = spec.build_dataset()
        results = {}
        for label, fraction in [("tiny", 0.01), ("default", 0.25), ("uncapped", 1e9)]:
            metrics, _ = run_metrics(
                spec,
                spec.build_config(fast=True, offload="off",
                                  spec_bandwidth_fraction=fraction),
                dataset,
            )
            results[label] = metrics.goodput
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nspec bandwidth cap sweep (goodput tok/s): {results}")
    assert results["default"] >= results["uncapped"] * 0.98
    assert results["default"] >= results["tiny"] * 0.98
    benchmark.extra_info["goodputs"] = results


def test_quantization_orthogonality(benchmark, show):
    """int8 speeds both systems; FastTTS's relative gain survives."""

    def sweep():
        out = {}
        for label, quant in [("fp16", None), ("int8", "int8")]:
            spec = ExperimentSpec(
                dataset_name="aime24", dataset_size=2, model_config="1.5B+1.5B",
                n=32, seed=0,
            )
            pair = run_pair(
                spec,
                baseline_overrides=dict(quantization=quant),
                fast_overrides=dict(quantization=quant),
            )
            out[label] = pair
        return out

    pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, pair in pairs.items():
        print(f"\n{label}: baseline={pair.baseline.goodput:.1f} tok/s "
              f"fasttts={pair.fasttts.goodput:.1f} tok/s "
              f"gain x{pair.goodput_gain:.2f}")
    # quantization speeds up both systems...
    assert pairs["int8"].fasttts.goodput > pairs["fp16"].fasttts.goodput
    assert pairs["int8"].baseline.goodput > pairs["fp16"].baseline.goodput
    # ...and FastTTS still wins on top of it (orthogonality)
    assert pairs["int8"].goodput_gain > 1.0
    # accuracy untouched in both regimes (equivalence + cost-only transform)
    assert (
        pairs["int8"].fasttts.top1_accuracy == pairs["fp16"].fasttts.top1_accuracy
    )
    benchmark.extra_info["gains"] = {
        label: round(pair.goodput_gain, 2) for label, pair in pairs.items()
    }


def test_block_size_ablation(benchmark, show):
    """Paged-block granularity is a fidelity knob, not a results knob."""

    def sweep():
        spec = ExperimentSpec(
            dataset_name="amc23", dataset_size=1, model_config="1.5B+1.5B",
            n=16, seed=0,
        )
        dataset = spec.build_dataset()
        from repro.core.server import TTSServer
        from repro.search.registry import build_algorithm

        outcomes = {}
        for block_tokens in (8, 16, 32):
            server = TTSServer(
                spec.build_config(fast=True, block_tokens=block_tokens), dataset
            )
            result = server.solve(list(dataset)[0], build_algorithm("beam_search", 16))
            outcomes[block_tokens] = result
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    signatures = {
        block: sorted((b.lineage, b.answer) for b in result.beams)
        for block, result in outcomes.items()
    }
    print("\nblock size -> goodput: "
          + str({b: round(r.goodput, 1) for b, r in outcomes.items()}))
    # search results identical across block granularities
    assert signatures[8] == signatures[16] == signatures[32]
    # timing differences stay within a narrow band (fragmentation only)
    goodputs = [r.goodput for r in outcomes.values()]
    assert max(goodputs) / min(goodputs) < 1.2
